package benchgen_test

import (
	"testing"

	"repro/internal/benchgen"
	"repro/internal/pipeline"
	"repro/internal/soc"
)

func TestSOCPresetLookup(t *testing.T) {
	for _, want := range []string{"soc1", "soc2", "soc1m", "socmini"} {
		p, ok := benchgen.SOCPresetByName(want)
		if !ok {
			t.Fatalf("preset %q missing", want)
		}
		if p.Name != want {
			t.Fatalf("looked up %q, got %q", want, p.Name)
		}
		if len(p.Bases) == 0 || p.Scale < 1 {
			t.Fatalf("preset %q degenerate: %+v", want, p)
		}
	}
	if _, ok := benchgen.SOCPresetByName("nope"); ok {
		t.Fatal("unknown preset resolved")
	}
}

// TestSOC1MFootprint pins the scale-out target's headline claim — past a
// million gates — from the profile table alone, without generating a
// single netlist: Footprint is what lets CLIs and planners size runs
// against soc1m cheaply.
func TestSOC1MFootprint(t *testing.T) {
	p, ok := benchgen.SOCPresetByName("soc1m")
	if !ok {
		t.Fatal("soc1m preset missing")
	}
	f, err := p.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	if f.Gates < 1_000_000 {
		t.Fatalf("soc1m footprint is %d gates, below the million-gate target", f.Gates)
	}
	if f.Cores != 6 {
		t.Fatalf("soc1m has %d cores, want the six largest", f.Cores)
	}
	if f.DFFs < 60_000 {
		t.Fatalf("soc1m footprint is %d scan cells, want a scan body past 60k", f.DFFs)
	}
	// The paper-scale presets stay at stock size.
	for _, name := range []string{"soc1", "soc2", "socmini"} {
		q, _ := benchgen.SOCPresetByName(name)
		g, err := q.Footprint()
		if err != nil {
			t.Fatal(err)
		}
		if g.Gates >= f.Gates {
			t.Fatalf("%s footprint (%d gates) not smaller than soc1m (%d)", name, g.Gates, f.Gates)
		}
	}
}

// TestSOCPresetProfilesDeterministic: resolving a preset's profiles and
// generating one of its scaled cores twice must yield content-identical
// circuits — the property that lets shard workers rebuild a coordinator's
// device from its preset name and verify the fingerprint.
func TestSOCPresetProfilesDeterministic(t *testing.T) {
	p, ok := benchgen.SOCPresetByName("soc1m")
	if !ok {
		t.Fatal("soc1m preset missing")
	}
	profs, err := p.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != len(p.Bases) {
		t.Fatalf("%d profiles for %d bases", len(profs), len(p.Bases))
	}
	// The smallest core keeps the smoke cheap; determinism is per-core.
	smallest := profs[0]
	for _, prof := range profs[1:] {
		if prof.Gates < smallest.Gates {
			smallest = prof
		}
	}
	a, err := benchgen.Generate(smallest)
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchgen.Generate(smallest)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := pipeline.CircuitFingerprint(a), pipeline.CircuitFingerprint(b)
	if fa != fb {
		t.Fatalf("same profile generated different circuits: %s vs %s", fa, fb)
	}
	if got := a.Stats().Gates; got != smallest.Gates {
		t.Fatalf("scaled core generated %d gates, profile says %d", got, smallest.Gates)
	}
}

// TestSOC1MGenerationSmoke assembles the full million-gate SOC once:
// every core generates, the daisy order matches the preset, and the
// realized structure meets the footprint the profile table promised.
// Several seconds of generation — skipped under -short.
func TestSOC1MGenerationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a million-gate SOC")
	}
	s, err := soc.Preset("soc1m")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := benchgen.SOCPresetByName("soc1m")
	f, err := p.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCores() != f.Cores {
		t.Fatalf("assembled %d cores, footprint says %d", s.NumCores(), f.Cores)
	}
	gates, cells := 0, 0
	for i, c := range s.Cores {
		st := c.Circuit.Stats()
		gates += st.Gates
		cells += st.DFFs
		if want := p.Bases[i]; c.Name[:len(want)] != want {
			t.Fatalf("core %d is %q, want a scaled %q", i, c.Name, want)
		}
	}
	if gates != f.Gates {
		t.Fatalf("generated %d gates, footprint says %d", gates, f.Gates)
	}
	if cells != f.DFFs || s.NumCells() != f.DFFs {
		t.Fatalf("generated %d cells (SOC reports %d), footprint says %d", cells, s.NumCells(), f.DFFs)
	}
	if gates < 1_000_000 {
		t.Fatalf("soc1m realized only %d gates", gates)
	}
}

// TestSocminiPreset pins the CI loopback SOC: three small cores, cheap
// enough that an end-to-end coordinator/worker run finishes in seconds.
func TestSocminiPreset(t *testing.T) {
	s, err := soc.Preset("socmini")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCores() != 3 {
		t.Fatalf("socmini has %d cores, want 3", s.NumCores())
	}
	p, _ := benchgen.SOCPresetByName("socmini")
	f, err := p.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	if f.Gates > 5_000 {
		t.Fatalf("socmini footprint %d gates — too big for a fast loopback fixture", f.Gates)
	}
}
