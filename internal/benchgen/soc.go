package benchgen

import "fmt"

// SOC1MScale is the factor that lifts the six largest ISCAS-89 profiles
// past the million-gate mark: their stock gate counts sum to ~67.5k, so
// ×15 lands at ~1.01M gates and ~69k scan cells — the "benchgen up ~30×
// beyond s38584" target the coordinator/worker split is sized for.
const SOC1MScale = 15

// SOCPreset is a deterministic multi-core SOC recipe: a list of base
// profiles, one scale factor applied to each, and the SOC's own name.
// Presets are pure data — resolving one costs nothing until Generate —
// so CLIs can list footprints without building million-gate netlists.
type SOCPreset struct {
	// Name is the preset's lookup key ("soc1", "soc2", "soc1m").
	Name string
	// SOCName is the name of the assembled SOC; it differs from Name
	// only for soc2, whose SOC keeps its historical "d695ish" identity.
	SOCName string
	// Bases are the stock profile names, in daisy (TestRail) order.
	Bases []string
	// Scale multiplies every base profile's structural dimensions
	// (Profile.Scale); 1 keeps the stock profiles.
	Scale int
}

// socPresets mirrors the paper's two SOCs and adds the million-gate
// scale-out target. soc1/soc2 resolve to exactly the cores soc.SOC1 and
// soc.SOC2 assemble.
var socPresets = []SOCPreset{
	{Name: "soc1", SOCName: "soc1", Bases: SixLargest(), Scale: 1},
	{Name: "soc2", SOCName: "d695ish", Bases: []string{
		"s838", "s9234", "s5378", "s38584", "s13207", "s38417", "s35932", "s15850",
	}, Scale: 1},
	{Name: "soc1m", SOCName: "soc1m", Bases: SixLargest(), Scale: SOC1MScale},
	// socmini is a three-small-core SOC for fast loopback tests and CI
	// end-to-end runs, where soc1's cores would dominate the wall-clock.
	{Name: "socmini", SOCName: "socmini", Bases: []string{"s298", "s953", "s526"}, Scale: 1},
}

// SOCPresets returns the built-in SOC presets.
func SOCPresets() []SOCPreset {
	out := make([]SOCPreset, len(socPresets))
	copy(out, socPresets)
	return out
}

// SOCPresetByName looks a preset up by its key.
func SOCPresetByName(name string) (SOCPreset, bool) {
	for _, p := range socPresets {
		if p.Name == name {
			return p, true
		}
	}
	return SOCPreset{}, false
}

// Profiles resolves the preset's cores to (scaled) generation profiles.
func (p SOCPreset) Profiles() ([]Profile, error) {
	out := make([]Profile, 0, len(p.Bases))
	for _, b := range p.Bases {
		prof, ok := ProfileByName(b)
		if !ok {
			return nil, fmt.Errorf("benchgen: SOC preset %s: unknown profile %s", p.Name, b)
		}
		out = append(out, prof.Scale(p.Scale))
	}
	return out, nil
}

// SOCFootprint sums a preset's structural dimensions from the profile
// table alone, without generating any netlist.
type SOCFootprint struct {
	Cores   int
	Inputs  int
	Outputs int
	DFFs    int
	Gates   int
}

// Footprint returns the preset's summed dimensions.
func (p SOCPreset) Footprint() (SOCFootprint, error) {
	profs, err := p.Profiles()
	if err != nil {
		return SOCFootprint{}, err
	}
	f := SOCFootprint{Cores: len(profs)}
	for _, prof := range profs {
		f.Inputs += prof.Inputs
		f.Outputs += prof.Outputs
		f.DFFs += prof.DFFs
		f.Gates += prof.Gates
	}
	return f, nil
}
