package atpg

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

const s27 = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

func parseS27(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := bench.Parse("s27", strings.NewReader(s27))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// detects checks by simulation whether the (filled) test pattern makes the
// fault visible at a scan cell or primary output.
func detects(t *testing.T, c *circuit.Circuit, f sim.Fault, test Test) bool {
	t.Helper()
	b := test.Block(99)
	s := sim.New(c)
	good := &sim.Response{Next: make([]uint64, c.NumDFFs()), PO: make([]uint64, c.NumOutputs())}
	bad := &sim.Response{Next: make([]uint64, c.NumDFFs()), PO: make([]uint64, c.NumOutputs())}
	s.Good(b, good)
	s.Faulty(b, f, bad)
	for i := range good.Next {
		if (good.Next[i]^bad.Next[i])&1 == 1 {
			return true
		}
	}
	for i := range good.PO {
		if (good.PO[i]^bad.PO[i])&1 == 1 {
			return true
		}
	}
	return false
}

// TestGeneratedTestsDetectTheirFaults is the central cross-validation:
// every PODEM "detected" outcome must be confirmed by the independent
// fault simulator.
func TestGeneratedTestsDetectTheirFaults(t *testing.T) {
	for _, name := range []string{"s27", "s953", "s5378"} {
		var c *circuit.Circuit
		if name == "s27" {
			c = parseS27(t)
		} else {
			c = benchgen.MustGenerate(name)
		}
		g := New(c)
		faults := sim.SampleFaults(sim.CollapseFaults(c, sim.FullFaultList(c)), 120, 71)
		detected, untestable, aborted := 0, 0, 0
		for _, f := range faults {
			test, outcome := g.Generate(f)
			switch outcome {
			case Detected:
				detected++
				if !detects(t, c, f, test) {
					t.Fatalf("%s: PODEM test for %s does not detect it (test assigns %d bits)",
						name, f.Describe(c), test.AssignedBits())
				}
			case Untestable:
				untestable++
			case Aborted:
				aborted++
			}
		}
		if detected == 0 {
			t.Fatalf("%s: PODEM detected nothing", name)
		}
		t.Logf("%s: %d detected, %d untestable, %d aborted of %d",
			name, detected, untestable, aborted, len(faults))
		if float64(detected) < 0.7*float64(len(faults)) {
			t.Errorf("%s: detection rate too low", name)
		}
	}
}

// TestUntestableRedundantFault: z = OR(a, NOT(a)) is constant 1, so
// z s-a-1 is undetectable and PODEM must prove it.
func TestUntestableRedundantFault(t *testing.T) {
	b := circuit.NewBuilder("redundant")
	b.Input("a").Input("pad").Output("zz")
	b.Gate("na", logic.OpNot, "a")
	b.Gate("z", logic.OpOr, "a", "na")
	b.DFF("q", "z")
	b.Gate("zz", logic.OpAnd, "q", "pad")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := New(c)
	z, _ := c.NetByName("z")
	if _, outcome := g.Generate(sim.Fault{Net: z, Gate: -1, Pin: -1, Stuck: 1}); outcome != Untestable {
		t.Errorf("z s-a-1 outcome = %v, want untestable", outcome)
	}
	// z s-a-0 is testable (any pattern captures 0 instead of 1).
	test, outcome := g.Generate(sim.Fault{Net: z, Gate: -1, Pin: -1, Stuck: 0})
	if outcome != Detected {
		t.Fatalf("z s-a-0 outcome = %v", outcome)
	}
	if !detects(t, c, sim.Fault{Net: z, Gate: -1, Pin: -1, Stuck: 0}, test) {
		t.Error("test does not detect z s-a-0")
	}
}

// TestExhaustiveAgreementSmall: on s27, PODEM's testable/untestable verdict
// must agree with exhaustive simulation over all 2^7 input/state
// combinations.
func TestExhaustiveAgreementSmall(t *testing.T) {
	c := parseS27(t)
	g := New(c)
	// Exhaustive detection check: 4 PIs + 3 state bits = 7 bits.
	exhaustive := func(f sim.Fault) bool {
		s := sim.New(c)
		good := &sim.Response{Next: make([]uint64, 3), PO: make([]uint64, 1)}
		bad := &sim.Response{Next: make([]uint64, 3), PO: make([]uint64, 1)}
		for v := 0; v < 128; v++ {
			b := &sim.Block{N: 1, PI: make([]uint64, 4), State: make([]uint64, 3)}
			for i := 0; i < 4; i++ {
				b.PI[i] = uint64(v >> uint(i) & 1)
			}
			for i := 0; i < 3; i++ {
				b.State[i] = uint64(v >> uint(4+i) & 1)
			}
			s.Good(b, good)
			s.Faulty(b, f, bad)
			for i := range good.Next {
				if (good.Next[i]^bad.Next[i])&1 == 1 {
					return true
				}
			}
			for i := range good.PO {
				if (good.PO[i]^bad.PO[i])&1 == 1 {
					return true
				}
			}
		}
		return false
	}
	for _, f := range sim.FullFaultList(c) {
		_, outcome := g.Generate(f)
		want := exhaustive(f)
		switch outcome {
		case Detected:
			if !want {
				t.Errorf("%s: PODEM detected, exhaustive says untestable", f.Describe(c))
			}
		case Untestable:
			if want {
				t.Errorf("%s: PODEM says untestable, exhaustive finds a test", f.Describe(c))
			}
		case Aborted:
			t.Errorf("%s: aborted on a 7-input circuit", f.Describe(c))
		}
	}
}

func TestTestBlockFillsDontCares(t *testing.T) {
	c := parseS27(t)
	g := New(c)
	faults := sim.SampleFaults(sim.FullFaultList(c), 10, 72)
	for _, f := range faults {
		test, outcome := g.Generate(f)
		if outcome != Detected {
			continue
		}
		b := test.Block(1)
		if b.N != 1 || len(b.PI) != 4 || len(b.State) != 3 {
			t.Fatalf("block shape %d/%d/%d", b.N, len(b.PI), len(b.State))
		}
		for _, w := range append(append([]uint64{}, b.PI...), b.State...) {
			if w > 1 {
				t.Fatalf("block word %d not a single bit", w)
			}
		}
		if test.AssignedBits() == 0 {
			t.Error("detected test assigns no bits")
		}
	}
}

func TestEval3TruthTables(t *testing.T) {
	// AND(0, X) = 0, AND(1, X) = X, OR(1, X) = 1, XOR(anything, X) = X.
	if eval3(logic.OpAnd, []tri{f0, fX}) != f0 {
		t.Error("AND(0,X) != 0")
	}
	if eval3(logic.OpAnd, []tri{f1, fX}) != fX {
		t.Error("AND(1,X) != X")
	}
	if eval3(logic.OpOr, []tri{f1, fX}) != f1 {
		t.Error("OR(1,X) != 1")
	}
	if eval3(logic.OpXor, []tri{f1, fX}) != fX {
		t.Error("XOR(1,X) != X")
	}
	if eval3(logic.OpNand, []tri{f0, fX}) != f1 {
		t.Error("NAND(0,X) != 1")
	}
	if eval3(logic.OpXnor, []tri{f1, f1}) != f1 {
		t.Error("XNOR(1,1) != 1")
	}
	if eval3(logic.OpNot, []tri{fX}) != fX {
		t.Error("NOT(X) != X")
	}
	if fX.String() != "X" || f0.String() != "0" {
		t.Error("tri.String wrong")
	}
}

func TestCompatibleAndMerge(t *testing.T) {
	a := Test{PI: []tri{f0, fX, f1}, State: []tri{fX}}
	b := Test{PI: []tri{fX, f1, f1}, State: []tri{f0}}
	if !Compatible(a, b) {
		t.Fatal("compatible tests reported incompatible")
	}
	m := Merge(a, b)
	want := Test{PI: []tri{f0, f1, f1}, State: []tri{f0}}
	for i := range want.PI {
		if m.PI[i] != want.PI[i] {
			t.Errorf("PI[%d] = %v", i, m.PI[i])
		}
	}
	if m.State[0] != f0 {
		t.Errorf("State[0] = %v", m.State[0])
	}
	c := Test{PI: []tri{f1, fX, fX}, State: []tri{fX}}
	if Compatible(a, c) {
		t.Error("conflicting tests reported compatible")
	}
}

// TestCompactPreservesDetection: compaction must shrink the set while each
// original fault stays detected by some compacted test.
func TestCompactPreservesDetection(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	g := New(c)
	faults := sim.SampleFaults(sim.CollapseFaults(c, sim.FullFaultList(c)), 150, 73)
	var tests []Test
	var covered []sim.Fault
	for _, f := range faults {
		if test, outcome := g.Generate(f); outcome == Detected {
			tests = append(tests, test)
			covered = append(covered, f)
		}
	}
	compacted := Compact(tests)
	if len(compacted) >= len(tests) {
		t.Errorf("compaction did not shrink: %d -> %d", len(tests), len(compacted))
	}
	t.Logf("compacted %d tests to %d patterns", len(tests), len(compacted))
	// Every covered fault must be detected by at least one compacted test
	// (care bits only — fill X with zero for determinism).
	for _, f := range covered {
		hit := false
		for _, test := range compacted {
			if detects(t, c, f, test) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("fault %s lost by compaction", f.Describe(c))
		}
	}
}
