// Package atpg implements deterministic test pattern generation for single
// stuck-at faults using the PODEM algorithm (Goel, 1981) over the full-scan
// combinational view of a circuit: primary inputs and scan-cell states are
// the controllable inputs, primary outputs and scan-cell D-inputs the
// observable outputs.
//
// In this repository ATPG plays a supporting role: it proves which sampled
// faults are testable at all (so pattern-set fault coverage can be compared
// against the achievable ceiling), produces the "pattern that detects this
// fault" the paper's worked example presumes, and cross-validates the fault
// simulator — every generated test is checked against simulation by the
// tests.
package atpg

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/testability"
)

// tri is a 3-valued logic level on one machine plane.
type tri uint8

// Three-valued levels.
const (
	f0 tri = iota // 0
	f1            // 1
	fX            // unassigned / unknown
)

func (t tri) String() string { return [...]string{"0", "1", "X"}[t] }

func not3(a tri) tri {
	switch a {
	case f0:
		return f1
	case f1:
		return f0
	}
	return fX
}

// eval3 evaluates op over 3-valued inputs.
func eval3(op logic.Op, in []tri) tri {
	switch op {
	case logic.OpBuf:
		return in[0]
	case logic.OpNot:
		return not3(in[0])
	case logic.OpAnd, logic.OpNand:
		v := f1
		for _, a := range in {
			if a == f0 {
				v = f0
				break
			}
			if a == fX {
				v = fX
			}
		}
		if op == logic.OpNand {
			return not3(v)
		}
		return v
	case logic.OpOr, logic.OpNor:
		v := f0
		for _, a := range in {
			if a == f1 {
				v = f1
				break
			}
			if a == fX {
				v = fX
			}
		}
		if op == logic.OpNor {
			return not3(v)
		}
		return v
	case logic.OpXor, logic.OpXnor:
		v := f0
		for _, a := range in {
			if a == fX {
				return fX
			}
			v ^= a
		}
		if op == logic.OpXnor {
			return not3(v)
		}
		return v
	case logic.OpConst0:
		return f0
	case logic.OpConst1:
		return f1
	}
	panic(fmt.Sprintf("atpg: eval3 on op %v", op))
}

// Test is a generated pattern: 3-valued assignments to the primary inputs
// and the scanned-in state, in circuit declaration order. Unassigned
// positions are don't-cares.
type Test struct {
	PI    []tri
	State []tri
}

// Block converts the test into a single-pattern simulation block, filling
// don't-cares pseudorandomly from seed.
func (t Test) Block(seed int64) *sim.Block {
	rng := rand.New(rand.NewSource(seed))
	fill := func(vals []tri) []uint64 {
		out := make([]uint64, len(vals))
		for i, v := range vals {
			switch v {
			case f1:
				out[i] = 1
			case fX:
				out[i] = rng.Uint64() & 1
			}
		}
		return out
	}
	return &sim.Block{N: 1, PI: fill(t.PI), State: fill(t.State)}
}

// Care returns the test's assigned bits as (position, value) pairs over
// the PRPG's per-pattern bit order: scan-state bits first (cell 0 first),
// then primary-input bits — exactly the order bist.GenerateBlocks draws
// them, so a reseeding solver can embed the cube in the pattern generator.
func (t Test) Care() (positions []int, values []bool) {
	for i, v := range t.State {
		if v != fX {
			positions = append(positions, i)
			values = append(values, v == f1)
		}
	}
	for i, v := range t.PI {
		if v != fX {
			positions = append(positions, len(t.State)+i)
			values = append(values, v == f1)
		}
	}
	return positions, values
}

// AssignedBits counts the care bits of the test.
func (t Test) AssignedBits() int {
	n := 0
	for _, v := range t.PI {
		if v != fX {
			n++
		}
	}
	for _, v := range t.State {
		if v != fX {
			n++
		}
	}
	return n
}

// Outcome classifies a generation attempt.
type Outcome int

// Generation outcomes.
const (
	// Detected: a test was found.
	Detected Outcome = iota
	// Untestable: the search space was exhausted — the fault is redundant.
	Untestable
	// Aborted: the backtrack limit was hit before a decision.
	Aborted
)

func (o Outcome) String() string {
	return [...]string{"detected", "untestable", "aborted"}[o]
}

// Compatible reports whether two tests can merge: no position where both
// assign opposite care values.
func Compatible(a, b Test) bool {
	merge := func(x, y []tri) bool {
		for i := range x {
			if x[i] != fX && y[i] != fX && x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return merge(a.PI, b.PI) && merge(a.State, b.State)
}

// Merge combines two compatible tests, keeping every care bit of both.
func Merge(a, b Test) Test {
	out := Test{PI: make([]tri, len(a.PI)), State: make([]tri, len(a.State))}
	pick := func(x, y tri) tri {
		if x != fX {
			return x
		}
		return y
	}
	for i := range a.PI {
		out.PI[i] = pick(a.PI[i], b.PI[i])
	}
	for i := range a.State {
		out.State[i] = pick(a.State[i], b.State[i])
	}
	return out
}

// Compact merges compatible tests greedily (static compaction): each test
// is folded into the first already-kept test it does not conflict with.
// PODEM's sparse care bits typically let several faults share one pattern,
// shrinking a deterministic test set severalfold.
func Compact(tests []Test) []Test {
	var kept []Test
	for _, t := range tests {
		merged := false
		for i := range kept {
			if Compatible(kept[i], t) {
				kept[i] = Merge(kept[i], t)
				merged = true
				break
			}
		}
		if !merged {
			kept = append(kept, t)
		}
	}
	return kept
}

// Generator runs PODEM for faults of one circuit.
type Generator struct {
	c *circuit.Circuit
	// BacktrackLimit bounds the search per fault; zero selects 2000.
	BacktrackLimit int

	goodV, badV []tri
	piIndex     map[circuit.NetID]int // input net -> PI/state slot
	isState     map[circuit.NetID]bool
	isPO        map[circuit.NetID]bool
	scoap       *testability.Measures // guides backtrace and frontier choice
}

// New builds a Generator. SCOAP testability measures are computed once and
// steer the search: backtrace follows the cheapest-to-control input and
// the D-frontier advances through the cheapest-to-observe gate, which cuts
// backtracking substantially on reconvergent logic.
func New(c *circuit.Circuit) *Generator {
	g := &Generator{
		c:              c,
		BacktrackLimit: 2000,
		goodV:          make([]tri, c.NumNets()),
		badV:           make([]tri, c.NumNets()),
		piIndex:        make(map[circuit.NetID]int),
		isState:        make(map[circuit.NetID]bool),
		isPO:           make(map[circuit.NetID]bool),
		scoap:          testability.Compute(c),
	}
	for i, id := range c.Inputs {
		g.piIndex[id] = i
	}
	for i, id := range c.DFFs {
		g.piIndex[id] = i
		g.isState[id] = true
	}
	for _, id := range c.Outputs {
		g.isPO[id] = true
	}
	return g
}

// Generate attempts to produce a test for fault f.
func (g *Generator) Generate(f sim.Fault) (Test, Outcome) {
	t := Test{
		PI:    make([]tri, g.c.NumInputs()),
		State: make([]tri, g.c.NumDFFs()),
	}
	for i := range t.PI {
		t.PI[i] = fX
	}
	for i := range t.State {
		t.State[i] = fX
	}

	type decision struct {
		net     circuit.NetID
		value   tri
		flipped bool
	}
	var stack []decision
	backtracks := 0

	assign := func(net circuit.NetID, v tri) {
		slot := g.piIndex[net]
		if g.isState[net] {
			t.State[slot] = v
		} else {
			t.PI[slot] = v
		}
	}

	for {
		g.imply(t, f)
		switch g.status(f) {
		case statusDetected:
			return t, Detected
		case statusPossible:
			net, v, ok := g.objective(f)
			if ok {
				pi, pv, ok := g.backtrace(net, v)
				if ok {
					stack = append(stack, decision{net: pi, value: pv})
					assign(pi, pv)
					continue
				}
			}
			// No X-path to drive the objective: treat as a conflict.
			fallthrough
		case statusConflict:
			// Backtrack: flip the most recent unflipped decision.
			for len(stack) > 0 {
				d := &stack[len(stack)-1]
				if !d.flipped {
					d.flipped = true
					d.value = not3(d.value)
					assign(d.net, d.value)
					break
				}
				assign(d.net, fX)
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				return Test{}, Untestable
			}
			backtracks++
			if g.BacktrackLimit > 0 && backtracks > g.BacktrackLimit {
				return Test{}, Aborted
			}
		}
	}
}

type status int

const (
	statusDetected status = iota // D/D̄ reached an observable point
	statusPossible               // undecided: X-paths remain
	statusConflict               // fault cannot be activated or propagated
)

// imply runs full 5-valued forward implication: the good plane ignores the
// fault, the bad plane forces it.
func (g *Generator) imply(t Test, f sim.Fault) {
	c := g.c
	for i, id := range c.Inputs {
		g.goodV[id] = t.PI[i]
		g.badV[id] = t.PI[i]
	}
	for i, id := range c.DFFs {
		g.goodV[id] = t.State[i]
		g.badV[id] = t.State[i]
	}
	if f.Stem() && !c.Nets[f.Net].Op.Combinational() {
		g.badV[f.Net] = tri(f.Stuck)
	}
	inBuf := make([]tri, 0, 8)
	for _, id := range c.TopoOrder() {
		n := &c.Nets[id]
		inBuf = inBuf[:0]
		for _, src := range n.Fanin {
			inBuf = append(inBuf, g.goodV[src])
		}
		g.goodV[id] = eval3(n.Op, inBuf)
		inBuf = inBuf[:0]
		for k, src := range n.Fanin {
			v := g.badV[src]
			if !f.Stem() && f.Gate == id && f.Pin == k {
				v = tri(f.Stuck)
			}
			inBuf = append(inBuf, v)
		}
		bad := eval3(n.Op, inBuf)
		if f.Stem() && f.Net == id {
			bad = tri(f.Stuck)
		}
		g.badV[id] = bad
	}
}

// observedAt reports whether the fault effect (good ≠ bad, both assigned)
// is visible at net id's observable role.
func (g *Generator) differsAt(id circuit.NetID) bool {
	gv, bv := g.goodV[id], g.badV[id]
	return gv != fX && bv != fX && gv != bv
}

// status inspects the implied values.
func (g *Generator) status(f sim.Fault) status {
	c := g.c
	// Detected: difference visible at a PO or at a flip-flop's D input
	// (captured and scanned out). A branch fault into a DFF is checked at
	// the capture point.
	for _, id := range c.Outputs {
		if g.differsAt(id) {
			return statusDetected
		}
	}
	for _, id := range c.DFFs {
		d := c.Nets[id].Fanin[0]
		gv, bv := g.goodV[d], g.badV[d]
		if !f.Stem() && f.Gate == id {
			bv = tri(f.Stuck)
		}
		if gv != fX && bv != fX && gv != bv {
			return statusDetected
		}
	}
	// Activation check: the fault site's good value decides.
	site := f.Net
	gv := g.goodV[site]
	if gv == tri(f.Stuck) {
		return statusConflict
	}
	if gv == fX {
		return statusPossible
	}
	// Activated: a D-frontier must exist (some gate sees the difference
	// and still outputs X), or the difference is blocked everywhere.
	if g.dFrontierGate(f) >= 0 {
		return statusPossible
	}
	return statusConflict
}

// dFrontierGate returns the D-frontier gate with the cheapest-to-observe
// output (a gate whose output is X while at least one input carries the
// fault difference), or -1.
func (g *Generator) dFrontierGate(f sim.Fault) circuit.NetID {
	c := g.c
	best, bestCO := circuit.NetID(-1), int32(1<<30)
	for _, id := range c.TopoOrder() {
		if g.goodV[id] != fX && g.badV[id] != fX {
			continue
		}
		n := &c.Nets[id]
		for k, src := range n.Fanin {
			bv := g.badV[src]
			if !f.Stem() && f.Gate == id && f.Pin == k {
				bv = tri(f.Stuck)
			}
			if g.goodV[src] != fX && bv != fX && g.goodV[src] != bv {
				if co := g.scoap.CO[id]; co < bestCO {
					best, bestCO = id, co
				}
				break
			}
		}
	}
	return best
}

// objective picks the next (net, value) goal: activate the fault if its
// site is X, otherwise advance the D-frontier by setting an X input of a
// frontier gate to the gate's non-controlling value.
func (g *Generator) objective(f sim.Fault) (circuit.NetID, tri, bool) {
	if g.goodV[f.Net] == fX {
		return f.Net, not3(tri(f.Stuck)), true
	}
	gate := g.dFrontierGate(f)
	if gate < 0 {
		return 0, fX, false
	}
	n := &g.c.Nets[gate]
	for _, src := range n.Fanin {
		if g.goodV[src] == fX {
			return src, nonControlling(n.Op), true
		}
	}
	return 0, fX, false
}

// nonControlling returns the value that lets a difference pass through the
// gate (1 for AND/NAND, 0 for OR/NOR; XOR passes differences regardless, 0
// keeps parity simple).
func nonControlling(op logic.Op) tri {
	switch op {
	case logic.OpAnd, logic.OpNand:
		return f1
	case logic.OpOr, logic.OpNor:
		return f0
	}
	return f0
}

// controlling returns the value that forces a gate's output on its own.
func controlling(op logic.Op) (tri, bool) {
	switch op {
	case logic.OpAnd, logic.OpNand:
		return f0, true
	case logic.OpOr, logic.OpNor:
		return f1, true
	}
	return fX, false
}

// backtrace walks the objective back to an unassigned primary input or
// state bit through X-valued nets, tracking inversion parity.
func (g *Generator) backtrace(net circuit.NetID, v tri) (circuit.NetID, tri, bool) {
	c := g.c
	for {
		n := &c.Nets[net]
		if !n.Op.Combinational() {
			if g.goodV[net] != fX {
				return 0, fX, false // already assigned: conflict upstream
			}
			return net, v, true
		}
		if n.Op.Inverting() {
			v = not3(v)
		}
		// Choose which input to pursue. If v is the gate's "output forced
		// by one controlling input" value, one X input suffices; otherwise
		// all inputs matter and any X input must be set to non-controlling.
		want := v
		cv, hasC := controlling(baseOp(n.Op))
		if hasC && v == cvOut(baseOp(n.Op)) {
			want = cv
		} else if hasC {
			want = not3(cv)
		}
		// Among the X inputs, pursue the cheapest to control toward `want`
		// (SCOAP CC0/CC1); hard-to-control inputs are left for implication.
		next := circuit.NetID(-1)
		bestCost := int32(1 << 30)
		for _, src := range n.Fanin {
			if g.goodV[src] != fX {
				continue
			}
			cost := g.scoap.CC1[src]
			if want == f0 {
				cost = g.scoap.CC0[src]
			}
			if cost < bestCost {
				next, bestCost = src, cost
			}
		}
		if next < 0 {
			return 0, fX, false
		}
		net, v = next, want
	}
}

// baseOp strips the inversion: NAND -> AND, NOR -> OR, XNOR -> XOR,
// NOT -> BUF.
func baseOp(op logic.Op) logic.Op {
	switch op {
	case logic.OpNand:
		return logic.OpAnd
	case logic.OpNor:
		return logic.OpOr
	case logic.OpXnor:
		return logic.OpXor
	case logic.OpNot:
		return logic.OpBuf
	}
	return op
}

// cvOut is the output value a single controlling input forces on the base
// (non-inverted) gate.
func cvOut(op logic.Op) tri {
	switch op {
	case logic.OpAnd:
		return f0
	case logic.OpOr:
		return f1
	}
	return fX
}
