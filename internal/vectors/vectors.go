// Package vectors identifies failing test vectors (patterns) in a
// scan-BIST environment — the companion problem to failing-cell
// identification, solved by the same authors with interval-based
// partitioning in reference [4] of the paper (Liu, Chakrabarty, Gössel,
// DATE 2002). The pattern sequence is partitioned into groups; one BIST
// session per group compacts only the responses of that group's patterns,
// and a pattern is a candidate failing vector exactly when its group's
// signature differs from the fault-free signature in every partition.
//
// The same scheme algebra applies on the time axis as on the cell axis:
// interval partitions exploit the temporal clustering of failing vectors
// (a detected fault typically fails bursts of related patterns), random
// selection provides fine-grained resolution, and superposition pruning
// over MISR error signatures refines the intersection set.
package vectors

import (
	"fmt"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/lfsr"
	"repro/internal/partition"
	"repro/internal/scan"
	"repro/internal/sim"
)

// Plan configures a failing-vector diagnosis run.
type Plan struct {
	Scheme     partition.Scheme
	Groups     int
	Partitions int
	MISRPoly   lfsr.Poly // zero selects degree 32
	Ideal      bool      // bypass compaction (no aliasing)
}

// Engine computes per-session verdicts over the pattern axis and derives
// candidate failing vectors.
type Engine struct {
	cfg       scan.Config
	plan      Plan
	nPatterns int
	shiftsL   int
	parts     []partition.Partition // over patterns
	posOf     []int                 // cell -> chain position
	chainOf   []int
	xp        []uint64
}

// NewEngine prepares the partitions (over the nPatterns pattern indices)
// and syndrome tables.
func NewEngine(cfg scan.Config, plan Plan, nPatterns int) (*Engine, error) {
	if plan.MISRPoly == 0 {
		plan.MISRPoly = lfsr.MustPrimitivePoly(32)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if plan.Scheme == nil {
		return nil, fmt.Errorf("vectors: plan has no partitioning scheme")
	}
	if plan.Groups < 1 || plan.Partitions < 1 || nPatterns < 1 {
		return nil, fmt.Errorf("vectors: groups, partitions and patterns must be positive")
	}
	parts, err := plan.Scheme.Partitions(nPatterns, plan.Groups, plan.Partitions)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		plan:      plan,
		nPatterns: nPatterns,
		shiftsL:   cfg.MaxChainLength(),
		parts:     parts,
		posOf:     make([]int, cfg.NumCells),
		chainOf:   make([]int, cfg.NumCells),
	}
	for ci, ch := range cfg.Chains {
		for pos, cell := range ch.Cells {
			e.chainOf[cell] = ci
			e.posOf[cell] = pos
		}
	}
	clocks := nPatterns * e.shiftsL
	e.xp = make([]uint64, clocks+len(cfg.Chains))
	x := lfsr.MustNew(plan.MISRPoly, 1)
	for i := range e.xp {
		e.xp[i] = x.State()
		x.Step()
	}
	return e, nil
}

// PatternPartitions returns the partitions over the pattern sequence.
func (e *Engine) PatternPartitions() []partition.Partition { return e.parts }

// Result is a failing-vector diagnosis.
type Result struct {
	// Actual holds the patterns on which at least one cell errs.
	Actual *bitset.Set
	// Candidates is the intersection candidate set of failing vectors.
	Candidates *bitset.Set
	// Pruned is the candidate set after superposition pruning.
	Pruned *bitset.Set
}

// Detected reports whether any pattern produced an error.
func (r *Result) Detected() bool { return !r.Actual.Empty() }

// Diagnose computes the failing-vector candidates for one fault from its
// good and faulty responses.
func (e *Engine) Diagnose(good, faulty []*sim.Response, blocks []*sim.Block) *Result {
	res := &Result{
		Actual:     bitset.New(e.nPatterns),
		Candidates: bitset.New(e.nPatterns),
	}
	errSig := make([][]uint64, e.plan.Partitions)
	idealFail := make([][]bool, e.plan.Partitions)
	for t := range errSig {
		errSig[t] = make([]uint64, e.plan.Groups)
		idealFail[t] = make([]bool, e.plan.Groups)
	}
	totalClocks := e.nPatterns * e.shiftsL
	patternBase := 0
	for bi, b := range blocks {
		mask := b.Mask()
		g, f := good[bi], faulty[bi]
		for cell := range g.Next {
			diff := (g.Next[cell] ^ f.Next[cell]) & mask
			if diff == 0 {
				continue
			}
			pos, chain := e.posOf[cell], e.chainOf[cell]
			for d := diff; d != 0; d &= d - 1 {
				p := patternBase + bits.TrailingZeros64(d)
				tau := p*e.shiftsL + pos
				syn := e.xp[totalClocks-1-tau+chain]
				res.Actual.Add(p)
				for t := 0; t < e.plan.Partitions; t++ {
					grp := e.parts[t].GroupOf[p]
					errSig[t][grp] ^= syn
					idealFail[t][grp] = true
				}
			}
		}
		patternBase += b.N
	}
	fail := make([][]bool, e.plan.Partitions)
	for t := range fail {
		fail[t] = make([]bool, e.plan.Groups)
		for g := range fail[t] {
			if e.plan.Ideal {
				fail[t][g] = idealFail[t][g]
			} else {
				fail[t][g] = errSig[t][g] != 0
			}
		}
	}
	// Intersection: a pattern is a candidate iff its group fails in every
	// partition.
	for p := 0; p < e.nPatterns; p++ {
		in := true
		for t := 0; t < e.plan.Partitions; t++ {
			if !fail[t][e.parts[t].GroupOf[p]] {
				in = false
				break
			}
		}
		if in {
			res.Candidates.Add(p)
		}
	}
	res.Pruned = e.prune(fail, errSig, res.Candidates)
	return res
}

// prune applies the superposition refinement on the pattern axis: a
// pattern's error syndrome is identical in every session that includes it,
// so singleton sessions isolate syndromes and fully-explained sessions
// prune their remaining candidates.
func (e *Engine) prune(fail [][]bool, errSig [][]uint64, cand *bitset.Set) *bitset.Set {
	pruned := cand.Clone()
	if e.plan.Ideal {
		return pruned
	}
	syndrome := make(map[int]uint64)
	for changed := true; changed; {
		changed = false
		for t := range fail {
			for g, f := range fail[t] {
				if !f {
					continue
				}
				residual := errSig[t][g]
				var unknown []int
				for _, p := range pruned.Elems() {
					if e.parts[t].GroupOf[p] != g {
						continue
					}
					if syn, ok := syndrome[p]; ok {
						residual ^= syn
					} else {
						unknown = append(unknown, p)
					}
				}
				switch {
				case len(unknown) == 1 && residual != 0:
					syndrome[unknown[0]] = residual
					changed = true
				case len(unknown) > 0 && residual == 0:
					for _, p := range unknown {
						pruned.Remove(p)
					}
					changed = true
				}
			}
		}
	}
	for p := range syndrome {
		pruned.Add(p)
	}
	return pruned
}

// DR is the diagnostic-resolution metric on the vector axis.
func DR(results []*Result) float64 {
	cand, actual := 0, 0
	for _, r := range results {
		if !r.Detected() {
			continue
		}
		cand += r.Pruned.Len()
		actual += r.Actual.Len()
	}
	if actual == 0 {
		return 0
	}
	return float64(cand-actual) / float64(actual)
}
