package vectors

import (
	"testing"

	"repro/internal/benchgen"
	"repro/internal/bist"
	"repro/internal/lfsr"
	"repro/internal/partition"
	"repro/internal/scan"
	"repro/internal/sim"
)

type fixture struct {
	eng    *Engine
	fs     *sim.FaultSim
	blocks []*sim.Block
	good   []*sim.Response
}

func newFixture(t *testing.T, plan Plan, nPatterns int) *fixture {
	t.Helper()
	c := benchgen.MustGenerate("s953")
	cfg := scan.SingleChain(c.NumDFFs())
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), nPatterns)
	fs := sim.NewFaultSim(c, blocks)
	eng, err := NewEngine(cfg, plan, nPatterns)
	if err != nil {
		t.Fatal(err)
	}
	good := make([]*sim.Response, len(blocks))
	for i := range blocks {
		good[i] = fs.Good(i)
	}
	return &fixture{eng: eng, fs: fs, blocks: blocks, good: good}
}

func TestNewEngineValidation(t *testing.T) {
	cfg := scan.SingleChain(8)
	if _, err := NewEngine(cfg, Plan{Groups: 2, Partitions: 1}, 16); err == nil {
		t.Error("nil scheme accepted")
	}
	if _, err := NewEngine(cfg, Plan{Scheme: partition.RandomSelection{}, Groups: 0, Partitions: 1}, 16); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := NewEngine(cfg, Plan{Scheme: partition.RandomSelection{}, Groups: 2, Partitions: 1}, 0); err == nil {
		t.Error("zero patterns accepted")
	}
	bad := scan.Config{NumCells: 2, Chains: []scan.Chain{{Cells: []int{0}}}}
	if _, err := NewEngine(bad, Plan{Scheme: partition.RandomSelection{}, Groups: 2, Partitions: 1}, 16); err == nil {
		t.Error("invalid scan config accepted")
	}
}

// TestCandidatesContainActualFailingVectors: with ideal compaction, every
// actually failing pattern survives intersection and pruning.
func TestCandidatesContainActualFailingVectors(t *testing.T) {
	fx := newFixture(t, Plan{
		Scheme: partition.TwoStep{}, Groups: 8, Partitions: 4, Ideal: true,
	}, 128)
	faults := sim.SampleFaults(sim.FullFaultList(fx.fs.Circuit()), 60, 51)
	checked := 0
	for _, f := range faults {
		res := fx.fs.Run(f)
		if !res.Detected() {
			continue
		}
		checked++
		vr := fx.eng.Diagnose(fx.good, res.Faulty, fx.blocks)
		if !vr.Detected() {
			t.Fatalf("fault %s: simulation detected but vector diagnosis empty", f.Describe(fx.fs.Circuit()))
		}
		for _, p := range vr.Actual.Elems() {
			if !vr.Candidates.Contains(p) {
				t.Fatalf("fault %s: failing pattern %d dropped by intersection", f.Describe(fx.fs.Circuit()), p)
			}
			if !vr.Pruned.Contains(p) {
				t.Fatalf("fault %s: failing pattern %d dropped by pruning", f.Describe(fx.fs.Circuit()), p)
			}
		}
		// Actual failing patterns must match DetectingPatterns from the
		// simulator.
		if vr.Actual.Len() != res.DetectingPatterns {
			t.Fatalf("fault %s: %d failing vectors vs %d detecting patterns",
				f.Describe(fx.fs.Circuit()), vr.Actual.Len(), res.DetectingPatterns)
		}
	}
	if checked == 0 {
		t.Fatal("no detected faults")
	}
}

// TestPruningRefines: with a real MISR, pruning only removes candidates and
// resolution improves over plain intersection in aggregate.
func TestPruningRefines(t *testing.T) {
	fx := newFixture(t, Plan{
		Scheme: partition.TwoStep{}, Groups: 8, Partitions: 4,
	}, 128)
	faults := sim.SampleFaults(sim.FullFaultList(fx.fs.Circuit()), 80, 52)
	var results []*Result
	interTotal, prunedTotal := 0, 0
	for _, f := range faults {
		res := fx.fs.Run(f)
		if !res.Detected() {
			continue
		}
		vr := fx.eng.Diagnose(fx.good, res.Faulty, fx.blocks)
		results = append(results, vr)
		interTotal += vr.Candidates.Len()
		prunedTotal += vr.Pruned.Len()
		sub := vr.Pruned.Clone()
		sub.SubtractWith(vr.Candidates)
		if !sub.Empty() {
			t.Fatalf("pruning added patterns for %s", f.Describe(fx.fs.Circuit()))
		}
	}
	if prunedTotal > interTotal {
		t.Errorf("pruning grew candidates: %d > %d", prunedTotal, interTotal)
	}
	if dr := DR(results); dr < 0 {
		t.Errorf("vector DR = %.3f < 0", dr)
	}
}

// TestVectorDiagnosisResolves: with 8 partitions of 8 groups over 128
// patterns the candidate set must close in on the actual failing vectors.
// Failing vectors of pseudorandom patterns are scattered in time (each
// pattern detects independently), so easy faults that fail on a third of
// all patterns keep every group failing and bound the achievable DR well
// above zero — the metric just has to be finite and useful.
func TestVectorDiagnosisResolves(t *testing.T) {
	fx := newFixture(t, Plan{
		Scheme: partition.TwoStep{}, Groups: 8, Partitions: 8,
	}, 128)
	faults := sim.SampleFaults(sim.FullFaultList(fx.fs.Circuit()), 100, 53)
	var results []*Result
	for _, f := range faults {
		res := fx.fs.Run(f)
		if !res.Detected() {
			continue
		}
		results = append(results, fx.eng.Diagnose(fx.good, res.Faulty, fx.blocks))
	}
	dr := DR(results)
	if dr > 3.0 {
		t.Errorf("vector DR = %.3f after 8 partitions; diagnosis ineffective", dr)
	}
	t.Logf("vector DR = %.4f over %d faults", dr, len(results))
}

func TestNoFaultNoCandidates(t *testing.T) {
	fx := newFixture(t, Plan{
		Scheme: partition.RandomSelection{}, Groups: 4, Partitions: 2,
	}, 64)
	vr := fx.eng.Diagnose(fx.good, fx.good, fx.blocks)
	if vr.Detected() || vr.Candidates.Len() != 0 || vr.Pruned.Len() != 0 {
		t.Error("fault-free run produced candidates")
	}
}

func TestDREmptyAndUndetected(t *testing.T) {
	if DR(nil) != 0 {
		t.Error("DR(nil) != 0")
	}
	fx := newFixture(t, Plan{Scheme: partition.RandomSelection{}, Groups: 4, Partitions: 2}, 64)
	undetected := fx.eng.Diagnose(fx.good, fx.good, fx.blocks)
	if DR([]*Result{undetected}) != 0 {
		t.Error("undetected results should not contribute to DR")
	}
}

func TestPatternPartitionsShape(t *testing.T) {
	fx := newFixture(t, Plan{Scheme: partition.Interval{}, Groups: 8, Partitions: 2}, 128)
	parts := fx.eng.PatternPartitions()
	if len(parts) != 2 {
		t.Fatalf("got %d partitions", len(parts))
	}
	for _, p := range parts {
		if p.Len() != 128 || !p.IsIntervalPartition() {
			t.Error("pattern partition malformed")
		}
	}
}
