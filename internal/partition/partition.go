// Package partition implements the scan-chain partitioning schemes the
// paper studies. A Partition assigns every chain position to one of b
// groups; one BIST session per group collects a signature over just that
// group's cells. Schemes generate sequences of partitions:
//
//   - RandomSelection: the LFSR-label scheme of Rajski & Tyszer — each
//     position's group is an r-bit label read from an LFSR clocked once per
//     shift, so groups are pseudorandom scattered subsets.
//   - Interval: the paper's contribution — groups are consecutive runs of
//     cells whose pseudorandom lengths are read from an LFSR, with seeds
//     chosen so b intervals exactly cover the chain.
//   - FixedInterval: the deterministic equal-length baseline of
//     Bayraktaroglu & Orailoglu, with rotating boundaries across partitions.
//   - TwoStep: a small number of interval partitions followed by
//     random-selection partitions — the paper's proposed method.
package partition

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/lfsr"
)

// Partition assigns each chain position to a group.
type Partition struct {
	GroupOf   []int // GroupOf[pos] = group index in [0, NumGroups)
	NumGroups int
}

// Len returns the number of chain positions.
func (p *Partition) Len() int { return len(p.GroupOf) }

// Groups returns the positions of each group, ascending within a group.
func (p *Partition) Groups() [][]int {
	gs := make([][]int, p.NumGroups)
	for pos, g := range p.GroupOf {
		gs[g] = append(gs[g], pos)
	}
	return gs
}

// Validate checks group indices are within range.
func (p *Partition) Validate() error {
	for pos, g := range p.GroupOf {
		if g < 0 || g >= p.NumGroups {
			return fmt.Errorf("partition: position %d in out-of-range group %d", pos, g)
		}
	}
	return nil
}

// IsIntervalPartition reports whether every group's positions form one
// contiguous run.
func (p *Partition) IsIntervalPartition() bool {
	for _, g := range p.Groups() {
		for i := 1; i < len(g); i++ {
			if g[i] != g[i-1]+1 {
				return false
			}
		}
	}
	return true
}

// Scheme generates the first k partitions of a chain of n cells into b
// groups. Implementations are deterministic: the same arguments always
// yield the same partitions.
type Scheme interface {
	Name() string
	Partitions(n, b, k int) ([]Partition, error)
}

// ExtraRegisters is implemented by schemes whose selection hardware needs
// registers beyond the base Figure-1 set (LFSR, IVR, Test Counter 1, Shift
// Counter 1, Pattern Counter). The paper's two-step architecture adds
// exactly Shift Counter 2 and Test Counter 2.
type ExtraRegisters interface {
	// ExtraRegisterBits returns the additional register bits for a chain
	// of n cells partitioned into b groups.
	ExtraRegisterBits(n, b int) int
}

// ExtraRegisterBits implements ExtraRegisters: Shift Counter 2 holds an
// interval length (AutoLenBits plus the truncation margin up to the chain
// length) and Test Counter 2 counts groups.
func (s Interval) ExtraRegisterBits(n, b int) int {
	s = s.withDefaults(n, b)
	// Shift Counter 2 must count down from up to 2^LenBits.
	return s.LenBits + 1 + labelBits(b)
}

// ExtraRegisterBits implements ExtraRegisters by delegating to the
// interval step: the random-selection partitions bypass the two extra
// registers but the hardware still carries them.
func (s TwoStep) ExtraRegisterBits(n, b int) int {
	return s.Interval.ExtraRegisterBits(n, b)
}

// ExtraRegisterBits implements ExtraRegisters for the deterministic
// baseline: equal-length blocks with rotating boundaries need a block-size
// register and an offset register, each as wide as a chain position — and,
// not captured by a bit count, the position-divider compare logic the paper
// calls "expensive control logic in the selection hardware". Its resolution
// can match or beat two-step (every partition is interval-shaped); its cost
// is why the paper rejects it.
func (FixedInterval) ExtraRegisterBits(n, b int) int {
	return 2 * labelBits(n)
}

func checkArgs(n, b, k int) error {
	if n < 1 {
		return fmt.Errorf("partition: chain length %d < 1", n)
	}
	if b < 1 || b > n {
		return fmt.Errorf("partition: group count %d outside [1, %d]", b, n)
	}
	if k < 0 {
		return fmt.Errorf("partition: partition count %d < 0", k)
	}
	return nil
}

// labelBits returns the label width r = ceil(log2 b) used by the selection
// hardware's Test Counter 1 comparison.
func labelBits(b int) int {
	if b <= 1 {
		return 1
	}
	return bits.Len(uint(b - 1))
}

// RandomSelection is the classical scheme: during each partition the LFSR
// is clocked once per scan shift, and position j belongs to the group whose
// number matches the r low state bits (reduced mod b when b is not a power
// of two). At the end of each partition the Initial Value Register is
// updated with the LFSR's current state, which re-labels every position for
// the next partition.
type RandomSelection struct {
	Poly lfsr.Poly // feedback polynomial; zero selects degree 16
	Seed uint64    // initial IVR contents; zero selects 0xACE1
}

// Name implements Scheme.
func (RandomSelection) Name() string { return "random-selection" }

func (s RandomSelection) withDefaults() RandomSelection {
	if s.Poly == 0 {
		s.Poly = lfsr.MustPrimitivePoly(16)
	}
	if s.Seed == 0 {
		s.Seed = 0xACE1
	}
	return s
}

// Partitions implements Scheme.
func (s RandomSelection) Partitions(n, b, k int) ([]Partition, error) {
	if err := checkArgs(n, b, k); err != nil {
		return nil, err
	}
	s = s.withDefaults()
	l, err := lfsr.New(s.Poly, s.Seed)
	if err != nil {
		return nil, err
	}
	r := labelBits(b)
	if r > l.Degree() {
		return nil, fmt.Errorf("partition: %d groups need %d label bits, LFSR has %d", b, r, l.Degree())
	}
	parts := make([]Partition, k)
	for t := 0; t < k; t++ {
		p := Partition{GroupOf: make([]int, n), NumGroups: b}
		for j := 0; j < n; j++ {
			p.GroupOf[j] = int(l.Label(r)) % b
			l.Step()
		}
		// The LFSR state after n shifts is written back to the IVR and
		// seeds the next partition; nothing to do, l already holds it.
		parts[t] = p
	}
	return parts, nil
}

// Interval is the paper's interval-based scheme. Group lengths are read
// from the low LenBits state bits of an LFSR seeded from the IVR (a zero
// reading counts as 2^LenBits, since Shift Counter 2 would wrap through a
// full count); after each interval the carry clocks the LFSR a LenBits-long
// burst so the next reading is fresh. Seeds are chosen so that b intervals
// cover the whole chain with none empty.
type Interval struct {
	Poly    lfsr.Poly // feedback polynomial; zero selects degree 16
	LenBits int       // k bits per length; zero derives from (n, b)
	Seeds   []uint64  // explicit per-partition seeds; empty triggers search
}

// Name implements Scheme.
func (Interval) Name() string { return "interval" }

func (s Interval) withDefaults(n, b int) Interval {
	if s.Poly == 0 {
		s.Poly = lfsr.MustPrimitivePoly(16)
	}
	if s.LenBits == 0 {
		s.LenBits = AutoLenBits(n, b)
	}
	return s
}

// AutoLenBits picks the length-field width k whose mean reading
// ((2^k + 1)/2 for uniform readings over 1..2^k) is closest to the target
// interval length n/b. Centring the mean on n/b makes "the first b−1
// intervals fall short of the chain and the b-th crosses it" the typical
// outcome, so covering seeds are plentiful and diverse.
func AutoLenBits(n, b int) int {
	target := float64(n) / float64(b)
	best, bestErr := 1, 1e18
	for k := 1; k <= 16; k++ {
		mean := (float64(int(1)<<uint(k)) + 1) / 2
		err := mean - target
		if err < 0 {
			err = -err
		}
		if err < bestErr {
			best, bestErr = k, err
		}
	}
	return best
}

// Lengths reads the b interval lengths the hardware would produce from the
// given seed: the low k bits of the state (zero read as 2^k), clocking the
// LFSR k times after each interval so successive readings use fresh state
// bits. (A single clock would leave adjacent readings sharing k−1 bits,
// collapsing almost all covering seeds onto one partition; the k-cycle
// burst is the same carry signal driving a short pulse train.)
func Lengths(l *lfsr.LFSR, k, b int) []int {
	lengths := make([]int, b)
	for i := 0; i < b; i++ {
		v := int(l.Label(k))
		if v == 0 {
			v = 1 << uint(k)
		}
		lengths[i] = v
		for s := 0; s < k; s++ {
			l.Step()
		}
	}
	return lengths
}

// coverError checks that the lengths cover a chain of n cells in exactly b
// non-empty intervals: the first b−1 sums to less than n and all b to at
// least n (the final interval is truncated at the chain end).
func coverError(lengths []int, n int) error {
	sum := 0
	for i, ln := range lengths {
		if sum >= n {
			return fmt.Errorf("interval %d starts beyond chain end (empty group)", i)
		}
		sum += ln
	}
	if sum < n {
		return fmt.Errorf("intervals cover only %d of %d cells", sum, n)
	}
	return nil
}

// FindSeeds selects count IVR seeds whose length sequences cover a chain of
// n cells in exactly b intervals. The paper notes that seeds are
// pre-computed and "carefully selected"; this search implements that
// selection:
//
//  1. every seed of the register is scanned and seeds that repeat another
//     seed's interval boundaries are deduplicated (a repeated partition
//     adds sessions without information);
//  2. covering partitions are ranked by balance (smallest maximum interval
//     first) — a partition with one huge interval resolves poorly;
//  3. from the balanced pool, seeds are picked greedily to maximise how
//     much their cut positions differ from the already-picked ones, so
//     successive interval partitions refine rather than repeat each other.
//
// An error is returned when fewer than count distinct covering partitions
// exist.
func FindSeeds(poly lfsr.Poly, k, n, b, count int) ([]uint64, error) {
	if k > poly.Degree() {
		return nil, fmt.Errorf("partition: length field %d wider than LFSR degree %d", k, poly.Degree())
	}
	if count <= 0 {
		return nil, nil
	}
	type cand struct {
		seed   uint64
		bounds []int
		maxLen int
	}
	var cands []cand
	seen := make(map[string]bool)
	limit := uint64(1)<<uint(poly.Degree()) - 1
	for seed := uint64(1); seed <= limit; seed++ {
		l, err := lfsr.New(poly, seed)
		if err != nil {
			return nil, err
		}
		lengths := Lengths(l, k, b)
		if coverError(lengths, n) != nil {
			continue
		}
		bounds := boundaries(lengths, n)
		key := fmt.Sprint(bounds)
		if seen[key] {
			continue
		}
		seen[key] = true
		maxLen := 0
		prev := 0
		for _, cut := range bounds {
			if cut-prev > maxLen {
				maxLen = cut - prev
			}
			prev = cut
		}
		cands = append(cands, cand{seed: seed, bounds: bounds, maxLen: maxLen})
	}
	if len(cands) < count {
		return nil, fmt.Errorf("partition: only %d of %d distinct covering partitions exist for n=%d b=%d k=%d",
			len(cands), count, n, b, k)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].maxLen != cands[j].maxLen {
			return cands[i].maxLen < cands[j].maxLen
		}
		return cands[i].seed < cands[j].seed
	})
	// Restrict to a balanced pool, then pick for boundary diversity.
	pool := cands
	if maxPool := count * 64; len(pool) > maxPool {
		pool = pool[:maxPool]
	}
	chosen := []cand{pool[0]}
	used := map[uint64]bool{pool[0].seed: true}
	for len(chosen) < count {
		bestIdx, bestDist := -1, -1
		for i, c := range pool {
			if used[c.seed] {
				continue
			}
			dist := 1 << 62
			for _, ch := range chosen {
				if d := cutDistance(c.bounds, ch.bounds); d < dist {
					dist = d
				}
			}
			if dist > bestDist {
				bestIdx, bestDist = i, dist
			}
		}
		chosen = append(chosen, pool[bestIdx])
		used[pool[bestIdx].seed] = true
	}
	seeds := make([]uint64, count)
	for i, c := range chosen {
		seeds[i] = c.seed
	}
	return seeds, nil
}

// boundaries converts a covering length sequence into cut positions
// truncated at the chain end.
func boundaries(lengths []int, n int) []int {
	bounds := make([]int, len(lengths))
	pos := 0
	for i, ln := range lengths {
		pos += ln
		if pos > n {
			pos = n
		}
		bounds[i] = pos
	}
	return bounds
}

// cutDistance sums the absolute offsets between two partitions' cut
// positions — zero means identical cuts.
func cutDistance(a, b []int) int {
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// Partitions implements Scheme.
func (s Interval) Partitions(n, b, k int) ([]Partition, error) {
	if err := checkArgs(n, b, k); err != nil {
		return nil, err
	}
	s = s.withDefaults(n, b)
	seeds := s.Seeds
	if len(seeds) == 0 {
		var err error
		seeds, err = FindSeeds(s.Poly, s.LenBits, n, b, k)
		if err != nil {
			return nil, err
		}
	}
	if len(seeds) < k {
		return nil, fmt.Errorf("partition: %d seeds supplied for %d interval partitions", len(seeds), k)
	}
	parts := make([]Partition, k)
	for t := 0; t < k; t++ {
		l, err := lfsr.New(s.Poly, seeds[t])
		if err != nil {
			return nil, err
		}
		lengths := Lengths(l, s.LenBits, b)
		if err := coverError(lengths, n); err != nil {
			return nil, fmt.Errorf("partition: seed %#x: %w", seeds[t], err)
		}
		p := Partition{GroupOf: make([]int, n), NumGroups: b}
		pos := 0
		for g, ln := range lengths {
			for i := 0; i < ln && pos < n; i++ {
				p.GroupOf[pos] = g
				pos++
			}
		}
		parts[t] = p
	}
	return parts, nil
}

// FixedInterval is the deterministic baseline: every group is a contiguous
// block of ⌈n/b⌉ cells, and partition t rotates the block boundaries by
// t·⌈n/b⌉/k positions (cyclically), so successive partitions cut the chain
// at different points.
type FixedInterval struct{}

// Name implements Scheme.
func (FixedInterval) Name() string { return "fixed-interval" }

// Partitions implements Scheme.
func (FixedInterval) Partitions(n, b, k int) ([]Partition, error) {
	if err := checkArgs(n, b, k); err != nil {
		return nil, err
	}
	block := (n + b - 1) / b
	parts := make([]Partition, k)
	for t := 0; t < k; t++ {
		offset := 0
		if k > 1 {
			offset = t * block / k
		}
		p := Partition{GroupOf: make([]int, n), NumGroups: b}
		for j := 0; j < n; j++ {
			p.GroupOf[j] = ((j + offset) / block) % b
		}
		parts[t] = p
	}
	return parts, nil
}

// TwoStep is the paper's proposed scheme: the first IntervalPartitions
// partitions come from the interval scheme (coarse-grained pruning of
// clustered failures), the remainder from random selection (fine-grained
// resolution).
type TwoStep struct {
	IntervalPartitions int // number of leading interval partitions; zero selects 1
	Interval           Interval
	Random             RandomSelection
}

// Name implements Scheme.
func (TwoStep) Name() string { return "two-step" }

// Partitions implements Scheme.
func (s TwoStep) Partitions(n, b, k int) ([]Partition, error) {
	if err := checkArgs(n, b, k); err != nil {
		return nil, err
	}
	m := s.IntervalPartitions
	if m == 0 {
		m = 1
	}
	if m > k {
		m = k
	}
	parts, err := s.Interval.Partitions(n, b, m)
	if err != nil {
		return nil, err
	}
	if k > m {
		rest, err := s.Random.Partitions(n, b, k-m)
		if err != nil {
			return nil, err
		}
		parts = append(parts, rest...)
	}
	return parts, nil
}
