package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/lfsr"
)

func validateCover(t *testing.T, parts []Partition, n, b int) {
	t.Helper()
	for pi, p := range parts {
		if err := p.Validate(); err != nil {
			t.Fatalf("partition %d: %v", pi, err)
		}
		if p.Len() != n || p.NumGroups != b {
			t.Fatalf("partition %d shape %d/%d, want %d/%d", pi, p.Len(), p.NumGroups, n, b)
		}
	}
}

func TestRandomSelectionBasics(t *testing.T) {
	s := RandomSelection{}
	parts, err := s.Partitions(100, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 {
		t.Fatalf("got %d partitions", len(parts))
	}
	validateCover(t, parts, 100, 4)
	// Successive partitions must differ (IVR update re-labels).
	same := true
	for j := range parts[0].GroupOf {
		if parts[0].GroupOf[j] != parts[1].GroupOf[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("partitions 0 and 1 are identical")
	}
	// Group sizes should be roughly balanced: no group may hold more than
	// half the chain for b=4.
	for g, cells := range parts[0].Groups() {
		if len(cells) > 50 {
			t.Errorf("group %d holds %d of 100 cells", g, len(cells))
		}
	}
}

func TestRandomSelectionDeterministic(t *testing.T) {
	a, _ := RandomSelection{}.Partitions(64, 8, 3)
	b, _ := RandomSelection{}.Partitions(64, 8, 3)
	for t2 := range a {
		for j := range a[t2].GroupOf {
			if a[t2].GroupOf[j] != b[t2].GroupOf[j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestRandomSelectionNonPowerOfTwoGroups(t *testing.T) {
	parts, err := RandomSelection{}.Partitions(90, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	validateCover(t, parts, 90, 3)
	seen := map[int]bool{}
	for _, g := range parts[0].GroupOf {
		seen[g] = true
	}
	if len(seen) != 3 {
		t.Errorf("only %d of 3 groups used", len(seen))
	}
}

func TestRandomSelectionScattered(t *testing.T) {
	parts, _ := RandomSelection{}.Partitions(64, 4, 1)
	if parts[0].IsIntervalPartition() {
		t.Error("random selection produced a pure interval partition (astronomically unlikely)")
	}
}

func TestIntervalPartitionsAreIntervals(t *testing.T) {
	parts, err := Interval{}.Partitions(52, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	validateCover(t, parts, 52, 4)
	for pi, p := range parts {
		if !p.IsIntervalPartition() {
			t.Errorf("partition %d is not interval-shaped", pi)
		}
		// Groups must appear in order 0,1,2,3 along the chain.
		last := -1
		for _, g := range p.GroupOf {
			if g < last {
				t.Errorf("partition %d: group order decreases", pi)
				break
			}
			last = g
		}
		// All groups non-empty.
		for g, cells := range p.Groups() {
			if len(cells) == 0 {
				t.Errorf("partition %d group %d empty", pi, g)
			}
		}
	}
	// Distinct seeds must give distinct cuts.
	same := true
	for j := range parts[0].GroupOf {
		if parts[0].GroupOf[j] != parts[1].GroupOf[j] {
			same = false
		}
	}
	if same {
		t.Error("two interval partitions identical")
	}
}

func TestIntervalExplicitSeeds(t *testing.T) {
	poly := lfsr.MustPrimitivePoly(16)
	seeds, err := FindSeeds(poly, AutoLenBits(52, 4), 52, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := Interval{Poly: poly, Seeds: seeds}
	parts, err := s.Partitions(52, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	validateCover(t, parts, 52, 4)
	// Too few explicit seeds is an error.
	s2 := Interval{Poly: poly, Seeds: seeds[:1]}
	if _, err := s2.Partitions(52, 4, 3); err == nil {
		t.Error("insufficient seeds accepted")
	}
}

func TestFindSeedsProperties(t *testing.T) {
	poly := lfsr.MustPrimitivePoly(16)
	k := AutoLenBits(100, 8)
	seeds, err := FindSeeds(poly, k, 100, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds {
		l, _ := lfsr.New(poly, seed)
		lengths := Lengths(l, k, 8)
		if err := coverError(lengths, 100); err != nil {
			t.Errorf("seed %#x: %v", seed, err)
		}
	}
}

func TestFindSeedsExhaustion(t *testing.T) {
	// Degree-4 LFSR has only 15 seeds; demanding 100 must fail.
	poly := lfsr.MustPrimitivePoly(4)
	if _, err := FindSeeds(poly, 2, 9, 4, 100); err == nil {
		t.Error("impossible seed demand satisfied")
	}
	// Length field wider than the register is rejected.
	if _, err := FindSeeds(poly, 9, 10, 2, 1); err == nil {
		t.Error("oversized length field accepted")
	}
}

func TestAutoLenBits(t *testing.T) {
	cases := []struct{ n, b, want int }{
		{52, 4, 5},    // target 13 -> k=5 (mean 16.5) beats k=4 (mean 8.5)
		{16, 4, 3},    // target 4 -> k=3 (mean 4.5)
		{1000, 32, 6}, // target 31.25 -> k=6 (mean 32.5)
		{8, 8, 1},
		{3, 3, 1},
		{29, 4, 4}, // target 7.25 -> k=4 (mean 8.5)
	}
	for _, c := range cases {
		if got := AutoLenBits(c.n, c.b); got != c.want {
			t.Errorf("AutoLenBits(%d,%d) = %d, want %d", c.n, c.b, got, c.want)
		}
	}
}

func TestFixedInterval(t *testing.T) {
	parts, err := FixedInterval{}.Partitions(100, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	validateCover(t, parts, 100, 4)
	// Partition 0 must be exact blocks of 25.
	for j, g := range parts[0].GroupOf {
		if g != j/25 {
			t.Fatalf("position %d in group %d, want %d", j, g, j/25)
		}
	}
	// Later partitions rotate the boundaries.
	if parts[0].GroupOf[0] == parts[2].GroupOf[24] && parts[2].GroupOf[0] != parts[2].GroupOf[24] {
		t.Log("rotation visible")
	}
	same := true
	for j := range parts[0].GroupOf {
		if parts[0].GroupOf[j] != parts[2].GroupOf[j] {
			same = false
		}
	}
	if same {
		t.Error("fixed-interval partitions do not rotate")
	}
}

func TestTwoStepComposition(t *testing.T) {
	s := TwoStep{}
	parts, err := s.Partitions(52, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	validateCover(t, parts, 52, 4)
	if !parts[0].IsIntervalPartition() {
		t.Error("first two-step partition is not interval-shaped")
	}
	if parts[1].IsIntervalPartition() {
		t.Error("second two-step partition should be random-selection")
	}
}

func TestTwoStepMultipleIntervalPartitions(t *testing.T) {
	s := TwoStep{IntervalPartitions: 3}
	parts, err := s.Partitions(100, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !parts[i].IsIntervalPartition() {
			t.Errorf("partition %d should be interval-shaped", i)
		}
	}
	if parts[3].IsIntervalPartition() || parts[4].IsIntervalPartition() {
		t.Error("trailing partitions should be random-selection")
	}
	// More interval partitions than total: all interval.
	s2 := TwoStep{IntervalPartitions: 9}
	parts2, err := s2.Partitions(100, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts2) != 2 {
		t.Fatalf("got %d partitions", len(parts2))
	}
}

func TestSchemeNames(t *testing.T) {
	names := map[string]Scheme{
		"random-selection": RandomSelection{},
		"interval":         Interval{},
		"fixed-interval":   FixedInterval{},
		"two-step":         TwoStep{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestArgumentValidation(t *testing.T) {
	for _, s := range []Scheme{RandomSelection{}, Interval{}, FixedInterval{}, TwoStep{}} {
		if _, err := s.Partitions(0, 1, 1); err == nil {
			t.Errorf("%s: n=0 accepted", s.Name())
		}
		if _, err := s.Partitions(10, 0, 1); err == nil {
			t.Errorf("%s: b=0 accepted", s.Name())
		}
		if _, err := s.Partitions(10, 11, 1); err == nil {
			t.Errorf("%s: b>n accepted", s.Name())
		}
		if _, err := s.Partitions(10, 2, -1); err == nil {
			t.Errorf("%s: k=-1 accepted", s.Name())
		}
		parts, err := s.Partitions(10, 2, 0)
		if err != nil || len(parts) != 0 {
			t.Errorf("%s: k=0 should yield no partitions, got %d (%v)", s.Name(), len(parts), err)
		}
	}
}

func TestLabelBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 32: 5}
	for b, want := range cases {
		if got := labelBits(b); got != want {
			t.Errorf("labelBits(%d) = %d, want %d", b, got, want)
		}
	}
}

func TestPartitionGroupsRoundTrip(t *testing.T) {
	p := Partition{GroupOf: []int{0, 1, 0, 2, 1}, NumGroups: 3}
	gs := p.Groups()
	if len(gs) != 3 {
		t.Fatalf("groups = %v", gs)
	}
	total := 0
	for g, cells := range gs {
		for _, pos := range cells {
			if p.GroupOf[pos] != g {
				t.Errorf("position %d in wrong group", pos)
			}
			total++
		}
	}
	if total != p.Len() {
		t.Errorf("groups cover %d of %d positions", total, p.Len())
	}
}

// TestQuickSchemesAlwaysValid property-tests every scheme over random
// (n, b, k) triples: each generated partition must cover every position
// with a valid group index, and interval-family partitions must be
// interval-shaped.
func TestQuickSchemesAlwaysValid(t *testing.T) {
	f := func(nRaw, bRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 8
		b := int(bRaw)%8 + 2
		if b > n/2 {
			b = n / 2
		}
		k := int(kRaw)%4 + 1
		for _, s := range []Scheme{RandomSelection{}, FixedInterval{}, TwoStep{}} {
			parts, err := s.Partitions(n, b, k)
			if err != nil {
				// Interval-backed schemes may legitimately run out of
				// distinct covering partitions for awkward (n, b).
				if s.Name() == "two-step" {
					continue
				}
				t.Logf("%s(%d,%d,%d): %v", s.Name(), n, b, k, err)
				return false
			}
			if len(parts) != k {
				return false
			}
			for _, p := range parts {
				if p.Len() != n || p.Validate() != nil {
					return false
				}
			}
			if s.Name() == "fixed-interval" {
				// Fixed blocks may wrap cyclically, so only the unrotated
				// first partition must be strictly interval-shaped.
				if !parts[0].IsIntervalPartition() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickLengthsPositive: interval length readings are always in
// [1, 2^k] for any seed.
func TestQuickLengthsPositive(t *testing.T) {
	poly := lfsr.MustPrimitivePoly(16)
	f := func(seedRaw uint16, kRaw, bRaw uint8) bool {
		seed := uint64(seedRaw)
		if seed == 0 {
			seed = 1
		}
		k := int(kRaw)%6 + 1
		b := int(bRaw)%16 + 1
		l, err := lfsr.New(poly, seed)
		if err != nil {
			return false
		}
		for _, ln := range Lengths(l, k, b) {
			if ln < 1 || ln > 1<<uint(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
