package partition

import (
	"strings"
	"testing"

	"repro/internal/lfsr"
)

func allSchemes() []Scheme {
	return []Scheme{
		RandomSelection{},
		Interval{},
		FixedInterval{},
		TwoStep{},
	}
}

// checkCovering asserts ps is a valid covering family: k partitions over n
// positions, every partition passing Validate with every position assigned
// an in-range group.
func checkCovering(t *testing.T, ps []Partition, n, b, k int, scheme string) {
	t.Helper()
	if len(ps) != k {
		t.Fatalf("%s(n=%d,b=%d,k=%d): got %d partitions", scheme, n, b, k, len(ps))
	}
	for i, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s(n=%d,b=%d,k=%d) partition %d: %v", scheme, n, b, k, i, err)
		}
		if p.Len() != n {
			t.Fatalf("%s(n=%d,b=%d,k=%d) partition %d covers %d positions", scheme, n, b, k, i, p.Len())
		}
		if p.NumGroups != b {
			t.Fatalf("%s(n=%d,b=%d,k=%d) partition %d has %d groups, want %d", scheme, n, b, k, i, p.NumGroups, b)
		}
	}
}

// TestEdgeCases drives every scheme through the boundary geometries: a
// single-cell chain, a single group, as many groups as cells, and group
// counts exceeding the chain length. Each call must either return a valid
// covering partition family or a descriptive error — never panic, never a
// malformed partition.
func TestEdgeCases(t *testing.T) {
	cases := []struct {
		n, b, k int
		wantErr bool // must error for every scheme
	}{
		{n: 0, b: 1, k: 1, wantErr: true},  // empty chain
		{n: -3, b: 1, k: 1, wantErr: true}, // negative chain
		{n: 5, b: 0, k: 1, wantErr: true},  // no groups
		{n: 5, b: -1, k: 1, wantErr: true}, // negative groups
		{n: 5, b: 6, k: 1, wantErr: true},  // b > n
		{n: 1, b: 2, k: 1, wantErr: true},  // b > n at the smallest chain
		{n: 5, b: 2, k: -1, wantErr: true}, // negative partition count
		{n: 1, b: 1, k: 1},                 // one cell, one group
		{n: 5, b: 1, k: 3},                 // single group swallows the chain
		{n: 5, b: 5, k: 2},                 // every cell its own group
		{n: 7, b: 3, k: 4},                 // non-dividing group count
		{n: 64, b: 4, k: 0},                // zero partitions is an empty family
	}
	for _, s := range allSchemes() {
		for _, tc := range cases {
			ps, err := s.Partitions(tc.n, tc.b, tc.k)
			if tc.wantErr {
				if err == nil {
					t.Errorf("%s(n=%d,b=%d,k=%d): invalid geometry accepted", s.Name(), tc.n, tc.b, tc.k)
				} else if strings.TrimSpace(err.Error()) == "" {
					t.Errorf("%s(n=%d,b=%d,k=%d): empty error message", s.Name(), tc.n, tc.b, tc.k)
				}
				continue
			}
			if err != nil {
				// Distinct-partition exhaustion is a legitimate descriptive
				// error for degenerate geometries (e.g. Interval with n=1 can
				// realise only one distinct cut sequence).
				if tc.n <= tc.b || tc.b == 1 {
					t.Logf("%s(n=%d,b=%d,k=%d): declined degenerate geometry: %v", s.Name(), tc.n, tc.b, tc.k, err)
					continue
				}
				t.Errorf("%s(n=%d,b=%d,k=%d): %v", s.Name(), tc.n, tc.b, tc.k, err)
				continue
			}
			checkCovering(t, ps, tc.n, tc.b, tc.k, s.Name())
		}
	}
}

// TestSingleGroupIsTotal: with b=1, every position must land in group 0.
func TestSingleGroupIsTotal(t *testing.T) {
	for _, s := range allSchemes() {
		ps, err := s.Partitions(9, 1, 2)
		if err != nil {
			t.Logf("%s: declined b=1: %v", s.Name(), err)
			continue
		}
		for i, p := range ps {
			for pos, g := range p.GroupOf {
				if g != 0 {
					t.Errorf("%s partition %d position %d in group %d, want 0", s.Name(), i, pos, g)
				}
			}
		}
	}
}

// TestMaxGroupsGeometry: b=n is a legal geometry for every scheme — a
// valid covering family or a descriptive error, never a malformed
// partition. The random-label schemes may leave groups empty or multiply
// occupied; FixedInterval alone guarantees exactly one cell per group.
func TestMaxGroupsGeometry(t *testing.T) {
	const n = 6
	for _, s := range allSchemes() {
		ps, err := s.Partitions(n, n, 2)
		if err != nil {
			t.Logf("%s: declined b=n: %v", s.Name(), err)
			continue
		}
		checkCovering(t, ps, n, n, 2, s.Name())
	}
	ps, err := FixedInterval{}.Partitions(n, n, 2)
	if err != nil {
		t.Fatalf("fixed-interval declined b=n: %v", err)
	}
	for i, p := range ps {
		seen := make([]bool, n)
		for pos, g := range p.GroupOf {
			if seen[g] {
				t.Errorf("fixed-interval partition %d: group %d holds more than one cell (position %d)", i, g, pos)
			}
			seen[g] = true
		}
	}
}

// FuzzPartitionSchemes feeds arbitrary geometries to all four schemes and
// checks the universal contract: valid covering family or error, no panics.
func FuzzPartitionSchemes(f *testing.F) {
	f.Add(10, 4, 3)
	f.Add(1, 1, 1)
	f.Add(0, 1, 1)
	f.Add(5, 6, 2)
	f.Add(64, 1, 4)
	f.Add(29, 29, 2)
	f.Add(100, 7, 8)
	f.Fuzz(func(t *testing.T, n, b, k int) {
		if n > 512 || k > 16 || b > 512 {
			t.Skip("bound the work per input")
		}
		for _, s := range allSchemes() {
			ps, err := s.Partitions(n, b, k)
			if err != nil {
				if strings.TrimSpace(err.Error()) == "" {
					t.Errorf("%s(n=%d,b=%d,k=%d): empty error message", s.Name(), n, b, k)
				}
				continue
			}
			if n < 1 || b < 1 || b > n || k < 0 {
				t.Fatalf("%s(n=%d,b=%d,k=%d): invalid geometry accepted", s.Name(), n, b, k)
			}
			checkCovering(t, ps, n, b, k, s.Name())
		}
	})
}

// FuzzIntervalSeeds fuzzes Interval's seed/length-bit surface: arbitrary
// explicit seeds must produce interval partitions or a descriptive error.
func FuzzIntervalSeeds(f *testing.F) {
	f.Add(16, 4, uint64(0xACE1), 4)
	f.Add(29, 4, uint64(1), 3)
	f.Add(8, 2, uint64(0xFFFF), 2)
	f.Fuzz(func(t *testing.T, n, b int, seed uint64, lenBits int) {
		if n > 256 || b > 256 || lenBits > 16 || lenBits < 1 {
			t.Skip()
		}
		s := Interval{Poly: lfsr.MustPrimitivePoly(16), LenBits: lenBits, Seeds: []uint64{seed}}
		ps, err := s.Partitions(n, b, 1)
		if err != nil {
			return
		}
		checkCovering(t, ps, n, b, 1, s.Name())
		if !ps[0].IsIntervalPartition() {
			t.Fatalf("Interval(n=%d,b=%d,seed=%#x,lenBits=%d) produced a non-interval partition", n, b, seed, lenBits)
		}
	})
}
