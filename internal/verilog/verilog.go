// Package verilog reads and writes gate-level netlists in a structural
// Verilog subset, the other interchange format the ISCAS benchmarks
// circulate in. The subset covers exactly what the circuit model needs:
//
//	module name (port, ...);
//	  input  a, b;
//	  output z;
//	  wire   w1, w2;
//	  nand g1 (w1, a, b);   // primitive: output first, then inputs
//	  dff  r1 (q, d);       // flip-flop: Q output, D input
//	endmodule
//
// Primitives: and, nand, or, nor, xor, xnor, not, buf, dff. Comments (//
// and /* */) are stripped. Instance names are optional on primitives, as
// in Verilog itself.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// primOf maps Verilog primitive names to gate operations.
var primOf = map[string]logic.Op{
	"and":  logic.OpAnd,
	"nand": logic.OpNand,
	"or":   logic.OpOr,
	"nor":  logic.OpNor,
	"xor":  logic.OpXor,
	"xnor": logic.OpXnor,
	"not":  logic.OpNot,
	"buf":  logic.OpBuf,
}

// nameOf is the inverse of primOf.
var nameOf = map[logic.Op]string{}

func init() {
	for n, op := range primOf {
		nameOf[op] = n
	}
}

// Parse reads a structural Verilog module.
func Parse(r io.Reader) (*circuit.Circuit, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.module()
}

// ParseString parses Verilog source held in a string.
func ParseString(src string) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(src))
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("verilog: expected %q, got %q", want, got)
	}
	return nil
}

// identList parses "a, b, c ;" (or up to a closing paren).
func (p *parser) identList(terminator string) ([]string, error) {
	var names []string
	for {
		name := p.next()
		if name == "" {
			return nil, fmt.Errorf("verilog: unexpected end of input in identifier list")
		}
		if !isIdent(name) {
			return nil, fmt.Errorf("verilog: expected identifier, got %q", name)
		}
		names = append(names, name)
		switch t := p.next(); t {
		case ",":
		case terminator:
			return names, nil
		default:
			return nil, fmt.Errorf("verilog: expected %q or ',', got %q", terminator, t)
		}
	}
}

func (p *parser) module() (*circuit.Circuit, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name := p.next()
	if !isIdent(name) {
		return nil, fmt.Errorf("verilog: bad module name %q", name)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	ports, err := p.identList(")")
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	b := circuit.NewBuilder(name)
	declared := map[string]string{} // port name -> direction
	for {
		switch t := p.next(); t {
		case "input", "output", "wire":
			names, err := p.identList(";")
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				switch t {
				case "input":
					b.Input(n)
					declared[n] = "input"
				case "output":
					b.Output(n)
					declared[n] = "output"
				}
				// wires carry no declaration in the circuit model
			}
		case "endmodule":
			for _, port := range ports {
				if declared[port] == "" {
					return nil, fmt.Errorf("verilog: port %q has no input/output declaration", port)
				}
			}
			return b.Build()
		case "":
			return nil, fmt.Errorf("verilog: unexpected end of input, missing endmodule")
		default:
			if err := p.instance(b, t); err != nil {
				return nil, err
			}
		}
	}
}

// instance parses "prim [name] ( out, in... ) ;" or "dff [name] ( q, d ) ;".
func (p *parser) instance(b *circuit.Builder, prim string) error {
	op, isDFF := logic.OpInvalid, false
	if prim == "dff" {
		isDFF = true
	} else {
		var ok bool
		op, ok = primOf[prim]
		if !ok {
			return fmt.Errorf("verilog: unknown primitive %q", prim)
		}
	}
	// Optional instance name.
	if isIdent(p.peek()) {
		p.next()
	}
	if err := p.expect("("); err != nil {
		return err
	}
	conns, err := p.identList(")")
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	if len(conns) < 2 {
		return fmt.Errorf("verilog: primitive %q needs an output and at least one input", prim)
	}
	if isDFF {
		if len(conns) != 2 {
			return fmt.Errorf("verilog: dff takes (Q, D), got %d terminals", len(conns))
		}
		b.DFF(conns[0], conns[1])
		return nil
	}
	b.Gate(conns[0], op, conns[1:]...)
	return nil
}

// Write emits the circuit as a structural Verilog module, gates in
// topological order.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	var ports []string
	for _, id := range c.Inputs {
		ports = append(ports, c.Nets[id].Name)
	}
	for _, id := range c.Outputs {
		ports = append(ports, c.Nets[id].Name)
	}
	fmt.Fprintf(bw, "module %s (%s);\n", sanitize(c.Name), strings.Join(ports, ", "))
	writeDecl := func(kind string, ids []circuit.NetID) {
		if len(ids) == 0 {
			return
		}
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = c.Nets[id].Name
		}
		fmt.Fprintf(bw, "  %s %s;\n", kind, strings.Join(names, ", "))
	}
	writeDecl("input", c.Inputs)
	writeDecl("output", c.Outputs)
	// Wires: every net that is not a port.
	isPort := map[circuit.NetID]bool{}
	for _, id := range c.Inputs {
		isPort[id] = true
	}
	for _, id := range c.Outputs {
		isPort[id] = true
	}
	var wires []string
	for id := range c.Nets {
		if !isPort[circuit.NetID(id)] {
			wires = append(wires, c.Nets[id].Name)
		}
	}
	if len(wires) > 0 {
		fmt.Fprintf(bw, "  wire %s;\n", strings.Join(wires, ", "))
	}
	fmt.Fprintln(bw)
	for i, id := range c.DFFs {
		n := c.Nets[id]
		fmt.Fprintf(bw, "  dff r%d (%s, %s);\n", i, n.Name, c.Nets[n.Fanin[0]].Name)
	}
	for i, id := range c.TopoOrder() {
		n := c.Nets[id]
		prim, ok := nameOf[n.Op]
		if !ok {
			return fmt.Errorf("verilog: no primitive for op %v", n.Op)
		}
		conns := make([]string, 0, len(n.Fanin)+1)
		conns = append(conns, n.Name)
		for _, f := range n.Fanin {
			conns = append(conns, c.Nets[f].Name)
		}
		fmt.Fprintf(bw, "  %s g%d (%s);\n", prim, i, strings.Join(conns, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// tokenize splits the source into identifiers and the punctuation the
// subset uses, stripping // and /* */ comments.
func tokenize(r io.Reader) ([]string, error) {
	var src strings.Builder
	if _, err := io.Copy(&src, bufio.NewReader(r)); err != nil {
		return nil, err
	}
	s := src.String()
	var toks []string
	i := 0
	for i < len(s) {
		ch := s[i]
		switch {
		case ch == '/' && i+1 < len(s) && s[i+1] == '/':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case ch == '/' && i+1 < len(s) && s[i+1] == '*':
			end := strings.Index(s[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("verilog: unterminated block comment")
			}
			i += end + 4
		case unicode.IsSpace(rune(ch)):
			i++
		case ch == '(' || ch == ')' || ch == ',' || ch == ';':
			toks = append(toks, string(ch))
			i++
		case isIdentByte(ch):
			j := i
			for j < len(s) && isIdentByte(s[j]) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			return nil, fmt.Errorf("verilog: unexpected character %q", ch)
		}
	}
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '$' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentByte(s[i]) {
			return false
		}
	}
	switch s {
	case "module", "endmodule", "input", "output", "wire", "(", ")", ",", ";":
		return false
	}
	return true
}

// sanitize makes a circuit name a legal Verilog identifier.
func sanitize(name string) string {
	out := []byte(name)
	for i, c := range out {
		if !isIdentByte(c) {
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "top"
	}
	if out[0] >= '0' && out[0] <= '9' {
		return "m" + string(out)
	}
	return string(out)
}
