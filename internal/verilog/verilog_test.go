package verilog

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/benchgen"
	"repro/internal/logic"
)

const tiny = `
// a tiny sequential module
module tiny (a, b, z);
  input a, b;
  output z;
  wire q, d;

  dff r0 (q, d);
  nand g0 (d, a, q);   /* feedback */
  or   g1 (z, b, q);
endmodule
`

func TestParseTiny(t *testing.T) {
	c, err := ParseString(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "tiny" {
		t.Errorf("name = %q", c.Name)
	}
	if c.NumInputs() != 2 || c.NumOutputs() != 1 || c.NumDFFs() != 1 || c.NumGates() != 2 {
		t.Errorf("counts %d/%d/%d/%d", c.NumInputs(), c.NumOutputs(), c.NumDFFs(), c.NumGates())
	}
	d, ok := c.NetByName("d")
	if !ok || c.Nets[d].Op != logic.OpNand {
		t.Error("nand gate missing")
	}
}

func TestParseAnonymousInstances(t *testing.T) {
	src := `module m (a, z);
input a; output z;
not (z, a);
endmodule`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 {
		t.Errorf("gates = %d", c.NumGates())
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := ParseString(tiny)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseString(buf.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if err := bench.Equivalent(c, c2); err != nil {
		t.Errorf("round trip changed circuit: %v", err)
	}
}

// TestBenchToVerilogBridge: generated benchmark circuits convert to
// Verilog and back unchanged, so both interchange formats are equivalent
// views of the same model.
func TestBenchToVerilogBridge(t *testing.T) {
	for _, name := range []string{"s27", "s953"} {
		c := benchgen.MustGenerate(name)
		var buf strings.Builder
		if err := Write(&buf, c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c2, err := ParseString(buf.String())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := bench.Equivalent(c, c2); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"noModule", "input a;", "expected \"module\""},
		{"badPrim", "module m (a); input a; frob (a, a); endmodule", "unknown primitive"},
		{"dffArity", "module m (a,z); input a; output z; dff (z, a, a); endmodule", "dff takes"},
		{"undeclaredPort", "module m (a, ghost); input a; endmodule", "no input/output declaration"},
		{"unterminatedComment", "module m (a); /* oops", "unterminated"},
		{"truncated", "module m (a); input a;", "unexpected end"},
		{"missingSemi", "module m (a) input a; endmodule", "expected \";\""},
		{"onePin", "module m (a,z); input a; output z; not (z); endmodule", "needs an output"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.src)
			if err == nil {
				t.Fatalf("parse succeeded, want error with %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"s953":    "s953",
		"my-chip": "my_chip",
		"9lives":  "m9lives",
		"":        "top",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := tokenize(strings.NewReader("a // line\n b /* block */ c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0] != "a" || toks[1] != "b" || toks[2] != "c" {
		t.Errorf("toks = %v", toks)
	}
}
