package verilog

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// FuzzParse hardens the Verilog reader: arbitrary input must never panic,
// and anything that parses must round-trip through Write∘Parse unchanged.
func FuzzParse(f *testing.F) {
	seeds := []string{
		tiny,
		"module m (a, z);\ninput a;\noutput z;\nnot (z, a);\nendmodule\n",
		"module m (a);\ninput a;\nendmodule",
		"module m (a); input a; wire w; buf (w, a); endmodule",
		"// nothing",
		"module",
		"module m (a; input a; endmodule",
		"module m (a, z); input a; output z; dff (z, a); endmodule",
		"module m (a, z); input a; output z; xor (z, a, a); endmodule",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src)
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := Write(&buf, c); err != nil {
			// Only reachable for ops without primitives, which Parse
			// cannot produce.
			t.Fatalf("Write failed on parsed circuit: %v", err)
		}
		c2, err := ParseString(buf.String())
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%s", err, buf.String())
		}
		if err := bench.Equivalent(c, c2); err != nil {
			t.Fatalf("round trip changed circuit: %v", err)
		}
	})
}
