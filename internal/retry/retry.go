// Package retry is the repository's single bounded-retry abstraction:
// a Policy says how many attempts a unit of work gets and how long to
// back off between them, and Do drives the attempts under a
// context.Context. It is a leaf package (stdlib only) so both the
// pipeline executor and the bist session scheduler can share one policy
// vocabulary without an import cycle.
//
// Only failures explicitly marked Transient are retried: a panic, a
// validation error, or a context cancellation is permanent and returns
// immediately. This mirrors the tester model of internal/bist, where an
// aborted session execution is transient (re-run it) but a corrupted
// configuration is not.
package retry

import (
	"context"
	"errors"
	"time"
)

// Policy bounds the attempts of one retryable unit of work.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first.
	// Values below 1 mean a single attempt (no retry).
	MaxAttempts int
	// Backoff is the wait before the second attempt; each further wait
	// doubles. Zero retries immediately, which suits deterministic
	// in-process work (re-running a session, re-claiming a batch) where
	// the failure cause is not load.
	Backoff time.Duration
}

// Attempts returns the effective attempt budget (always at least 1).
func (p Policy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// transientError marks an error as safe to retry.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so Do (and IsTransient) treat it as retryable.
// A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable anywhere in its
// chain.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Do runs op under the policy: up to Attempts() calls, re-running only
// transient failures, backing off (exponentially from Backoff) between
// attempts, and giving up as soon as ctx is done. The returned error is
// the last attempt's error, or ctx.Err() when the context ended first.
// op receives the attempt number, starting at 0.
func Do(ctx context.Context, p Policy, op func(attempt int) error) error {
	attempts := p.Attempts()
	wait := p.Backoff
	var err error
	for a := 0; a < attempts; a++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(a); err == nil || !IsTransient(err) {
			return err
		}
		if a == attempts-1 {
			break
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
			wait *= 2
		}
	}
	return err
}
