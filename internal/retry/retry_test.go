package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestAttemptsClampsToOne(t *testing.T) {
	for _, n := range []int{-3, 0, 1} {
		if got := (Policy{MaxAttempts: n}).Attempts(); got != 1 {
			t.Errorf("MaxAttempts=%d: Attempts() = %d, want 1", n, got)
		}
	}
	if got := (Policy{MaxAttempts: 4}).Attempts(); got != 4 {
		t.Errorf("Attempts() = %d, want 4", got)
	}
}

func TestTransientMarking(t *testing.T) {
	base := errors.New("boom")
	if IsTransient(base) {
		t.Error("unmarked error reported transient")
	}
	if !IsTransient(Transient(base)) {
		t.Error("marked error not reported transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", Transient(base))) {
		t.Error("transience lost through wrapping")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Transient broke the error chain")
	}
}

func TestDoRetriesOnlyTransient(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5}, func(int) error {
		calls++
		return perm
	})
	if calls != 1 || !errors.Is(err, perm) {
		t.Errorf("permanent failure: %d calls, err %v; want 1 call", calls, err)
	}

	calls = 0
	err = Do(context.Background(), Policy{MaxAttempts: 3}, func(a int) error {
		calls++
		if a < 2 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if calls != 3 || err != nil {
		t.Errorf("transient then success: %d calls, err %v; want 3 calls, nil", calls, err)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 3}, func(int) error {
		calls++
		return Transient(errors.New("always"))
	})
	if calls != 3 {
		t.Errorf("%d calls, want 3", calls)
	}
	if !IsTransient(err) {
		t.Errorf("exhausted budget returned %v, want the last transient error", err)
	}
}

func TestDoHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 3}, func(int) error {
		calls++
		return nil
	})
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx: %d calls, err %v; want 0 calls, Canceled", calls, err)
	}

	// Cancellation during backoff interrupts the wait.
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, Policy{MaxAttempts: 2, Backoff: time.Hour}, func(int) error {
			return Transient(errors.New("flaky"))
		})
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("backoff cancel returned %v, want Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do did not return after cancellation during backoff")
	}
}
