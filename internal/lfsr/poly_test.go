package lfsr

import (
	"sort"
	"testing"
)

func TestPolyDegreeAndString(t *testing.T) {
	p := PolyFromTaps(16, 15, 13, 4)
	if p.Degree() != 16 {
		t.Errorf("degree = %d, want 16", p.Degree())
	}
	if got, want := p.String(), "x^16 + x^15 + x^13 + x^4 + 1"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if Poly(0).Degree() != -1 || Poly(0).String() != "0" {
		t.Error("zero polynomial misreported")
	}
	if Poly(3).String() != "x + 1" {
		t.Errorf("x+1 rendered as %q", Poly(3).String())
	}
}

func TestPolyFromTapsIgnoresEdges(t *testing.T) {
	// Taps at 0 and degree must not duplicate the implicit terms.
	if PolyFromTaps(4, 0, 4, 3) != PolyFromTaps(4, 3) {
		t.Error("edge taps changed the polynomial")
	}
}

func TestMod(t *testing.T) {
	// (x^4 + x + 1) mod (x^2 + x + 1):
	// x^4 = (x^2+x+1)(x^2+x) + 1... verify via brute force multiply-back.
	m := Poly(0b111)
	p := Poly(0b10011)
	r := p.mod(m)
	if r.Degree() >= m.Degree() {
		t.Fatalf("mod did not reduce: %v", r)
	}
	// Check p ≡ r by adding multiples of m back: exhaustive small search.
	found := false
	for q := Poly(0); q < 64; q++ {
		prod := mulNaive(q, m)
		if prod^r == p {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("mod result %v inconsistent with %v mod %v", r, p, m)
	}
}

// mulNaive multiplies two GF(2) polynomials without reduction.
func mulNaive(a, b Poly) Poly {
	var r Poly
	for i := 0; i <= b.Degree(); i++ {
		if b>>uint(i)&1 == 1 {
			r ^= a << uint(i)
		}
	}
	return r
}

func TestMulModMatchesNaive(t *testing.T) {
	m := PolyFromTaps(8, 6, 5, 4)
	for a := Poly(1); a < 64; a += 7 {
		for b := Poly(1); b < 64; b += 5 {
			want := mulNaive(a, b).mod(m)
			if got := mulMod(a, b, m); got != want {
				t.Fatalf("mulMod(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestPowMod(t *testing.T) {
	m := PolyFromTaps(8, 6, 5, 4)
	// x^(2^8-1) must be 1 for a primitive polynomial of degree 8.
	if powMod(2, 255, m) != 1 {
		t.Error("x^255 != 1 mod primitive degree-8 polynomial")
	}
	// powMod must agree with iterated multiplication.
	got := powMod(3, 13, m)
	want := Poly(1)
	for i := 0; i < 13; i++ {
		want = mulMod(want, 3, m)
	}
	if got != want {
		t.Errorf("powMod = %v, want %v", got, want)
	}
}

func TestIrreducible(t *testing.T) {
	// x^2 + x + 1 is irreducible; x^2 + 1 = (x+1)^2 is not.
	if !Poly(0b111).Irreducible() {
		t.Error("x^2+x+1 reported reducible")
	}
	if Poly(0b101).Irreducible() {
		t.Error("x^2+1 reported irreducible")
	}
	// x^4 + x^2 + 1 = (x^2+x+1)^2 reducible.
	if Poly(0b10101).Irreducible() {
		t.Error("(x^2+x+1)^2 reported irreducible")
	}
	// Anything without constant term is divisible by x.
	if Poly(0b110).Irreducible() {
		t.Error("x^2+x reported irreducible")
	}
}

func TestPrimitiveSmallExhaustive(t *testing.T) {
	// Degree 4: the primitive polynomials are exactly x^4+x+1 and x^4+x^3+1
	// (x^4+x^3+x^2+x+1 is irreducible but has order 5).
	var prim []Poly
	for p := Poly(1 << 4); p < 1<<5; p++ {
		if p.Primitive() {
			prim = append(prim, p)
		}
	}
	want := []Poly{0b10011, 0b11001}
	sort.Slice(prim, func(i, j int) bool { return prim[i] < prim[j] })
	if len(prim) != 2 || prim[0] != want[0] || prim[1] != want[1] {
		t.Errorf("degree-4 primitives = %v, want %v", prim, want)
	}
	if !Poly(0b11111).Irreducible() {
		t.Error("x^4+x^3+x^2+x+1 should be irreducible")
	}
	if Poly(0b11111).Primitive() {
		t.Error("x^4+x^3+x^2+x+1 should not be primitive (order 5)")
	}
}

// TestPrimitiveTableVerified proves every tabulated polynomial really is
// primitive — the property the paper's "primitive-polynomial LFSR of degree
// 16" depends on.
func TestPrimitiveTableVerified(t *testing.T) {
	for d := 2; d <= 32; d++ {
		p, err := PrimitivePoly(d)
		if err != nil {
			t.Fatalf("degree %d: %v", d, err)
		}
		if p.Degree() != d {
			t.Errorf("degree %d: polynomial %v has degree %d", d, p, p.Degree())
		}
		if !p.Primitive() {
			t.Errorf("degree %d: tabulated polynomial %v is not primitive", d, p)
		}
	}
}

func TestPrimitivePolyUnknownDegree(t *testing.T) {
	if _, err := PrimitivePoly(33); err == nil {
		t.Error("degree 33 accepted")
	}
	if _, err := PrimitivePoly(1); err == nil {
		t.Error("degree 1 accepted")
	}
}

func TestMustPrimitivePolyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPrimitivePoly(99) did not panic")
		}
	}()
	MustPrimitivePoly(99)
}

func TestPrimeFactors(t *testing.T) {
	cases := map[uint64][]uint64{
		1:          nil,
		2:          {2},
		12:         {2, 3},
		255:        {3, 5, 17},
		65535:      {3, 5, 17, 257},
		4294967295: {3, 5, 17, 257, 65537},
		7:          {7},
		8191:       {8191}, // Mersenne prime 2^13-1
	}
	for n, want := range cases {
		got := primeFactors(n)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Errorf("primeFactors(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("primeFactors(%d) = %v, want %v", n, got, want)
				break
			}
		}
	}
}

func TestGCD(t *testing.T) {
	a := mulNaive(0b111, 0b1011) // (x^2+x+1)(x^3+x+1)
	b := mulNaive(0b111, 0b11)   // (x^2+x+1)(x+1)
	if g := gcd(a, b); g != 0b111 {
		t.Errorf("gcd = %v, want x^2+x+1", g)
	}
	if g := gcd(0b1011, 0b111); g.Degree() != 0 {
		t.Errorf("gcd of coprime polynomials = %v", g)
	}
}
