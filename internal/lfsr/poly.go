// Package lfsr provides the linear-feedback machinery of a scan-BIST
// architecture: polynomial arithmetic over GF(2), primitivity testing, a
// table of verified primitive polynomials, maximal-length LFSRs (the PRPG
// and the interval/label generator of the selection hardware), and MISRs
// for response compaction.
package lfsr

import (
	"fmt"
	"math/bits"
	"strings"
)

// Poly is a polynomial over GF(2); bit i holds the coefficient of x^i.
// The zero value is the zero polynomial. Degrees up to 63 are supported.
type Poly uint64

// PolyFromTaps builds x^degree + Σ x^tap + 1. The constant term is always
// included (a feedback polynomial without it is degenerate), as is the
// leading term. Taps equal to 0 or degree are accepted and ignored.
func PolyFromTaps(degree int, taps ...int) Poly {
	p := Poly(1) | Poly(1)<<uint(degree)
	for _, t := range taps {
		if t > 0 && t < degree {
			p |= 1 << uint(t)
		}
	}
	return p
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	if p == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(p))
}

// String renders p in conventional notation, e.g. "x^4 + x^3 + 1".
func (p Poly) String() string {
	if p == 0 {
		return "0"
	}
	var terms []string
	for i := p.Degree(); i >= 0; i-- {
		if p>>uint(i)&1 == 0 {
			continue
		}
		switch i {
		case 0:
			terms = append(terms, "1")
		case 1:
			terms = append(terms, "x")
		default:
			terms = append(terms, fmt.Sprintf("x^%d", i))
		}
	}
	return strings.Join(terms, " + ")
}

// mulMod returns a*b mod m over GF(2). m must be nonzero with degree ≤ 32
// so intermediate products fit in 64 bits after reduction-as-we-go.
func mulMod(a, b, m Poly) Poly {
	a = a.mod(m)
	var r Poly
	for b != 0 {
		if b&1 == 1 {
			r ^= a
		}
		b >>= 1
		a <<= 1
		if a.Degree() >= m.Degree() {
			a ^= m
		}
	}
	return r.mod(m)
}

// mod reduces p modulo m over GF(2).
func (p Poly) mod(m Poly) Poly {
	dm := m.Degree()
	for p.Degree() >= dm {
		p ^= m << uint(p.Degree()-dm)
	}
	return p
}

// gcd returns the polynomial GCD of a and b over GF(2).
func gcd(a, b Poly) Poly {
	for b != 0 {
		a, b = b, a.mod(b)
	}
	return a
}

// powMod returns base^exp mod m over GF(2).
func powMod(base Poly, exp uint64, m Poly) Poly {
	r := Poly(1)
	base = base.mod(m)
	for exp > 0 {
		if exp&1 == 1 {
			r = mulMod(r, base, m)
		}
		base = mulMod(base, base, m)
		exp >>= 1
	}
	return r
}

// frobenius returns x^(2^k) mod m by repeated squaring of x, avoiding any
// need to represent the huge exponent.
func frobenius(k int, m Poly) Poly {
	t := Poly(2).mod(m) // the polynomial x
	for i := 0; i < k; i++ {
		t = mulMod(t, t, m)
	}
	return t
}

// Irreducible reports whether p is irreducible over GF(2), using Rabin's
// test: x^(2^d) ≡ x (mod p), and gcd(x^(2^(d/q)) − x, p) = 1 for every
// prime divisor q of d. Polynomials of degree < 1 are not irreducible.
func (p Poly) Irreducible() bool {
	d := p.Degree()
	if d < 1 {
		return false
	}
	if d == 1 {
		return true
	}
	if p&1 == 0 {
		return false // divisible by x
	}
	x := Poly(2)
	if frobenius(d, p) != x.mod(p) {
		return false
	}
	for _, q := range primeFactors(uint64(d)) {
		sub := frobenius(d/int(q), p) ^ x.mod(p)
		if g := gcd(sub, p); g.Degree() > 0 {
			return false
		}
	}
	return true
}

// Primitive reports whether p is a primitive polynomial over GF(2): it is
// irreducible and x generates the full multiplicative group of GF(2^d),
// i.e. ord(x) = 2^d − 1. An LFSR with a primitive feedback polynomial is
// maximal-length. Degrees up to 32 are supported (2^d − 1 must be
// factorised); higher degrees return false.
func (p Poly) Primitive() bool {
	d := p.Degree()
	if d < 1 || d > 32 {
		return false
	}
	if !p.Irreducible() {
		return false
	}
	order := uint64(1)<<uint(d) - 1
	if powMod(2, order, p) != 1 {
		return false
	}
	for _, q := range primeFactors(order) {
		if powMod(2, order/q, p) == 1 {
			return false
		}
	}
	return true
}

// primeFactors returns the distinct prime factors of n by trial division.
// n up to 2^32 factorises instantly; larger n are still correct, just slow.
func primeFactors(n uint64) []uint64 {
	var fs []uint64
	for _, p := range []uint64{2, 3} {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	for p := uint64(5); p*p <= n; p += 6 {
		for _, c := range []uint64{p, p + 2} {
			if n%c == 0 {
				fs = append(fs, c)
				for n%c == 0 {
					n /= c
				}
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// primitiveTaps lists, per degree, the non-edge tap exponents of a known
// primitive polynomial (XAPP052 table). Degree 16 is the polynomial the
// paper's experiments use: x^16 + x^15 + x^13 + x^4 + 1.
var primitiveTaps = map[int][]int{
	2:  {1},
	3:  {2},
	4:  {3},
	5:  {3},
	6:  {5},
	7:  {6},
	8:  {6, 5, 4},
	9:  {5},
	10: {7},
	11: {9},
	12: {6, 4, 1},
	13: {4, 3, 1},
	14: {5, 3, 1},
	15: {14},
	16: {15, 13, 4},
	17: {14},
	18: {11},
	19: {6, 2, 1},
	20: {17},
	21: {19},
	22: {21},
	23: {18},
	24: {23, 22, 17},
	25: {22},
	26: {6, 2, 1},
	27: {5, 2, 1},
	28: {25},
	29: {27},
	30: {6, 4, 1},
	31: {28},
	32: {22, 2, 1},
}

// PrimitivePoly returns a verified primitive polynomial of the given degree
// (2 ≤ degree ≤ 32).
func PrimitivePoly(degree int) (Poly, error) {
	taps, ok := primitiveTaps[degree]
	if !ok {
		return 0, fmt.Errorf("lfsr: no primitive polynomial tabulated for degree %d", degree)
	}
	return PolyFromTaps(degree, taps...), nil
}

// MustPrimitivePoly is PrimitivePoly for known-good degrees; it panics on
// error and is intended for package-level initialisation.
func MustPrimitivePoly(degree int) Poly {
	p, err := PrimitivePoly(degree)
	if err != nil {
		panic(err)
	}
	return p
}
