package lfsr

import "fmt"

// PhaseShifter derives W parallel pseudorandom channels from one LFSR, the
// STUMPS arrangement for loading W scan chains simultaneously. Each
// channel XORs a distinct subset of register stages; by LFSR linearity a
// channel's bit stream equals the base m-sequence at some large phase
// offset, so adjacent chains do not receive shifted copies of each other
// (the "structural dependency" a naive multi-tap PRPG suffers from).
type PhaseShifter struct {
	l     *LFSR
	masks []uint64 // per channel, the XORed register stages
}

// phaseGuard is the alignment window used to verify channel separation at
// construction: no channel's stream may match another's within this many
// clocks of shift.
const phaseGuard = 32

// NewPhaseShifter builds a shifter with `channels` outputs over the LFSR.
// Any XOR of register stages yields the base m-sequence at *some* phase,
// but naively chosen tap sets land at adjacent phases (stage t is stage
// t−1 delayed one clock), which is exactly the structural correlation the
// shifter must remove. Candidate tap masks are therefore drawn from a
// deterministic scrambler and each is accepted only after verifying its
// stream does not align with any accepted channel within ±32 clocks.
func NewPhaseShifter(l *LFSR, channels int) (*PhaseShifter, error) {
	d := l.Degree()
	if channels < 1 {
		return nil, fmt.Errorf("lfsr: phase shifter needs at least 1 channel")
	}
	if channels > 64 {
		return nil, fmt.Errorf("lfsr: at most 64 channels per shifter, requested %d", channels)
	}
	if uint64(channels) >= uint64(1)<<uint(d) {
		return nil, fmt.Errorf("lfsr: %d channels exceed the tap subsets of a degree-%d register", channels, d)
	}
	ps := &PhaseShifter{l: l}

	// Reference stream of states from the canonical state 1, long enough
	// to check ±phaseGuard alignment over a 3×guard window.
	const window = 6 * phaseGuard
	ref, err := New(l.Poly(), 1)
	if err != nil {
		return nil, err
	}
	states := make([]uint64, window)
	for i := range states {
		states[i] = ref.State()
		ref.Step()
	}
	streamOf := func(mask uint64) []uint8 {
		s := make([]uint8, window)
		for i, st := range states {
			s[i] = parity(st & mask)
		}
		return s
	}
	aligns := func(a, b []uint8) bool {
		for off := -phaseGuard; off <= phaseGuard; off++ {
			same := true
			for k := 0; k < window; k++ {
				j := k + off
				if j < 0 || j >= window {
					continue
				}
				if a[k] != b[j] {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
		return false
	}

	// Deterministic candidate masks from a scrambler over the same field.
	scramble, err := New(l.Poly(), 0x5A5A%((1<<uint(d))-1)+1)
	if err != nil {
		return nil, err
	}
	var accepted [][]uint8
	tries := 0
	for len(ps.masks) < channels {
		tries++
		if tries > 1<<uint(min(d, 20)) {
			return nil, fmt.Errorf("lfsr: could not find %d separated channels for degree %d", channels, d)
		}
		mask := scramble.State()
		scramble.Step()
		if mask == 0 {
			continue
		}
		cand := streamOf(mask)
		ok := true
		for _, prev := range accepted {
			if aligns(cand, prev) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		accepted = append(accepted, cand)
		ps.masks = append(ps.masks, mask)
	}
	return ps, nil
}

func parity(v uint64) uint8 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return uint8(v & 1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Channels returns the channel count.
func (ps *PhaseShifter) Channels() int { return len(ps.masks) }

// Step produces one bit per channel (bit c of the result) and advances the
// LFSR one clock.
func (ps *PhaseShifter) Step() uint64 {
	var out uint64
	state := ps.l.State()
	for c, mask := range ps.masks {
		out |= uint64(parity(state&mask)) << uint(c)
	}
	ps.l.Step()
	return out
}
