package lfsr

import "fmt"

// LFSR is a maximal-length-capable linear feedback shift register. Its
// state is a polynomial s(x) of degree < n; each Step multiplies by x
// modulo the feedback polynomial, which for a primitive polynomial walks
// all 2^n − 1 nonzero states. It serves as PRPG (pseudorandom pattern
// generator), as the scan-cell label generator of random-selection
// partitioning, and as the interval-length generator of interval-based
// partitioning.
type LFSR struct {
	poly   Poly
	degree int
	mask   uint64
	state  uint64
}

// New returns an LFSR with the given feedback polynomial and seed. The seed
// is reduced to the register width; a zero (or zero-reducing) seed is
// rejected because the all-zero state is a fixed point.
func New(poly Poly, seed uint64) (*LFSR, error) {
	d := poly.Degree()
	if d < 2 || d > 63 {
		return nil, fmt.Errorf("lfsr: feedback polynomial degree %d out of range [2,63]", d)
	}
	if poly&1 == 0 {
		return nil, fmt.Errorf("lfsr: feedback polynomial %v lacks constant term", poly)
	}
	l := &LFSR{poly: poly, degree: d, mask: 1<<uint(d) - 1}
	if err := l.Seed(seed); err != nil {
		return nil, err
	}
	return l, nil
}

// MustNew is New but panics on error; for tests and constants.
func MustNew(poly Poly, seed uint64) *LFSR {
	l, err := New(poly, seed)
	if err != nil {
		panic(err)
	}
	return l
}

// Degree returns the register length in bits.
func (l *LFSR) Degree() int { return l.degree }

// Poly returns the feedback polynomial.
func (l *LFSR) Poly() Poly { return l.poly }

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// Seed loads the register, reducing to the register width. A zero state is
// rejected.
func (l *LFSR) Seed(seed uint64) error {
	seed &= l.mask
	if seed == 0 {
		return fmt.Errorf("lfsr: zero seed is a fixed point")
	}
	l.state = seed
	return nil
}

// Step advances the register one shift clock and returns the output bit
// (the coefficient that falls off the top of the register).
func (l *LFSR) Step() uint64 {
	l.state <<= 1
	out := l.state >> uint(l.degree) & 1
	if out == 1 {
		l.state ^= uint64(l.poly)
	}
	return out
}

// Bit returns bit i of the current state (stage i's output).
func (l *LFSR) Bit(i int) uint64 { return l.state >> uint(i) & 1 }

// Label assembles an r-bit value from the r lowest stages of the register
// without advancing it. This is the "r-bit binary label" that
// random-selection partitioning compares against Test Counter 1.
func (l *LFSR) Label(r int) uint64 { return l.state & (1<<uint(r) - 1) }

// NextBits advances the register n times and packs the output bits, first
// bit in the least-significant position. n must be ≤ 64.
func (l *LFSR) NextBits(n int) uint64 {
	var w uint64
	for i := 0; i < n; i++ {
		w |= l.Step() << uint(i)
	}
	return w
}

// Period runs the register from its current state until the state recurs,
// returning the cycle length. Intended for verification on small degrees;
// cost is O(period).
func (l *LFSR) Period() uint64 {
	start := l.state
	var n uint64
	for {
		l.Step()
		n++
		if l.state == start {
			return n
		}
	}
}

// MISR is a multiple-input signature register with internal (Galois-style)
// feedback: each clock shifts the register up one stage, applies the
// feedback polynomial when the top bit falls off, and XORs in up to
// `degree` parallel response bits. With the all-zero initial state the
// transformation from input stream to signature is linear over GF(2), the
// property response-compaction and the superposition pruning of
// Bayraktaroglu & Orailoglu rely on.
type MISR struct {
	poly   Poly
	degree int
	mask   uint64
	state  uint64
}

// NewMISR returns a MISR with the given feedback polynomial and a zero
// initial state.
func NewMISR(poly Poly) (*MISR, error) {
	d := poly.Degree()
	if d < 2 || d > 63 {
		return nil, fmt.Errorf("lfsr: MISR polynomial degree %d out of range [2,63]", d)
	}
	if poly&1 == 0 {
		return nil, fmt.Errorf("lfsr: MISR polynomial %v lacks constant term", poly)
	}
	return &MISR{poly: poly, degree: d, mask: 1<<uint(d) - 1}, nil
}

// MustNewMISR is NewMISR but panics on error.
func MustNewMISR(poly Poly) *MISR {
	m, err := NewMISR(poly)
	if err != nil {
		panic(err)
	}
	return m
}

// Degree returns the register length in bits.
func (m *MISR) Degree() int { return m.degree }

// Reset clears the register to the all-zero state.
func (m *MISR) Reset() { m.state = 0 }

// Clock shifts the register once and XORs in the parallel input word
// (truncated to the register width). A single-chain configuration feeds one
// response bit per clock in bit 0; a W-chain TAM feeds W bits.
func (m *MISR) Clock(in uint64) {
	m.state <<= 1
	if m.state>>uint(m.degree)&1 == 1 {
		m.state ^= uint64(m.poly)
	}
	m.state ^= in & m.mask
}

// Signature returns the current register contents.
func (m *MISR) Signature() uint64 { return m.state }
