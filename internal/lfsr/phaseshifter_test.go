package lfsr

import "testing"

func TestPhaseShifterValidation(t *testing.T) {
	l := MustNew(MustPrimitivePoly(16), 1)
	if _, err := NewPhaseShifter(l, 0); err == nil {
		t.Error("0 channels accepted")
	}
	if _, err := NewPhaseShifter(l, 16*15/2+1); err == nil {
		t.Error("too many channels accepted")
	}
	ps, err := NewPhaseShifter(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Channels() != 8 {
		t.Errorf("channels = %d", ps.Channels())
	}
}

// TestChannelsAreShiftedMSequences: each channel of a maximal-length LFSR
// is itself an m-sequence (same period, balanced), since an XOR of stages
// is the base sequence at another phase.
func TestChannelsAreShiftedMSequences(t *testing.T) {
	const d = 10
	period := 1<<d - 1
	l := MustNew(MustPrimitivePoly(d), 1)
	ps, err := NewPhaseShifter(l, 6)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([][]uint8, ps.Channels())
	for i := range streams {
		streams[i] = make([]uint8, period)
	}
	for k := 0; k < period; k++ {
		w := ps.Step()
		for c := range streams {
			streams[c][k] = uint8(w >> uint(c) & 1)
		}
	}
	for c, s := range streams {
		ones := 0
		for _, b := range s {
			ones += int(b)
		}
		if ones != 1<<(d-1) {
			t.Errorf("channel %d: %d ones per period, want %d", c, ones, 1<<(d-1))
		}
	}
}

// TestChannelsPairwiseDistinct: no two channels may be identical or
// short-offset copies of each other (the property the shifter exists for).
func TestChannelsPairwiseDistinct(t *testing.T) {
	l := MustNew(MustPrimitivePoly(16), 0xACE1)
	ps, err := NewPhaseShifter(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	const window = 256
	streams := make([][]uint8, ps.Channels())
	for i := range streams {
		streams[i] = make([]uint8, window)
	}
	for k := 0; k < window; k++ {
		w := ps.Step()
		for c := range streams {
			streams[c][k] = uint8(w >> uint(c) & 1)
		}
	}
	for a := 0; a < len(streams); a++ {
		for b := a + 1; b < len(streams); b++ {
			for off := 0; off < 8; off++ {
				same := true
				for k := 0; k+off < window; k++ {
					if streams[a][k] != streams[b][k+off] {
						same = false
						break
					}
				}
				if same {
					t.Errorf("channel %d equals channel %d at offset %d", a, b, off)
				}
			}
		}
	}
}

func TestPhaseShifterDeterministic(t *testing.T) {
	mk := func() []uint64 {
		l := MustNew(MustPrimitivePoly(16), 7)
		ps, _ := NewPhaseShifter(l, 4)
		out := make([]uint64, 50)
		for i := range out {
			out[i] = ps.Step()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
}
