package lfsr

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(Poly(0b11), 1); err == nil {
		t.Error("degree-1 polynomial accepted")
	}
	if _, err := New(PolyFromTaps(8, 4)|0, 0); err == nil {
		t.Error("zero seed accepted")
	}
	if _, err := New(Poly(0b10010), 1); err == nil {
		t.Error("polynomial without constant term accepted")
	}
	if _, err := New(MustPrimitivePoly(16), 1<<16); err == nil {
		t.Error("seed that reduces to zero accepted")
	}
}

// TestMaximalLength verifies the central LFSR property: with a primitive
// feedback polynomial of degree d, the state sequence has period 2^d − 1.
func TestMaximalLength(t *testing.T) {
	for _, d := range []int{2, 3, 4, 8, 11, 16} {
		l := MustNew(MustPrimitivePoly(d), 1)
		want := uint64(1)<<uint(d) - 1
		if got := l.Period(); got != want {
			t.Errorf("degree %d: period %d, want %d", d, got, want)
		}
	}
}

func TestNonPrimitiveShortPeriod(t *testing.T) {
	// x^4+x^3+x^2+x+1 is irreducible with order 5: period must divide 5.
	l := MustNew(Poly(0b11111), 1)
	if p := l.Period(); p != 5 {
		t.Errorf("period = %d, want 5", p)
	}
}

func TestStepVisitsAllNonzeroStates(t *testing.T) {
	l := MustNew(MustPrimitivePoly(8), 0xA5)
	seen := make(map[uint64]bool)
	for i := 0; i < 255; i++ {
		if seen[l.State()] {
			t.Fatalf("state %#x repeated at step %d", l.State(), i)
		}
		if l.State() == 0 {
			t.Fatal("reached zero state")
		}
		seen[l.State()] = true
		l.Step()
	}
	if len(seen) != 255 {
		t.Errorf("visited %d states, want 255", len(seen))
	}
}

func TestSeedRestoresSequence(t *testing.T) {
	l := MustNew(MustPrimitivePoly(16), 0xACE1)
	first := make([]uint64, 100)
	for i := range first {
		first[i] = l.Step()
	}
	if err := l.Seed(0xACE1); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if got := l.Step(); got != first[i] {
			t.Fatalf("bit %d differs after reseed", i)
		}
	}
}

func TestLabelMatchesStateBits(t *testing.T) {
	l := MustNew(MustPrimitivePoly(16), 0xBEEF)
	for i := 0; i < 50; i++ {
		if l.Label(5) != l.State()&31 {
			t.Fatalf("Label(5) = %d, state low bits = %d", l.Label(5), l.State()&31)
		}
		for b := 0; b < 16; b++ {
			if l.Bit(b) != l.State()>>uint(b)&1 {
				t.Fatalf("Bit(%d) mismatch", b)
			}
		}
		l.Step()
	}
}

func TestNextBitsPacksLSBFirst(t *testing.T) {
	l1 := MustNew(MustPrimitivePoly(16), 0x1234)
	l2 := MustNew(MustPrimitivePoly(16), 0x1234)
	w := l1.NextBits(64)
	for i := 0; i < 64; i++ {
		if w>>uint(i)&1 != l2.Step() {
			t.Fatalf("bit %d of NextBits disagrees with Step", i)
		}
	}
}

func TestOutputBalance(t *testing.T) {
	// A maximal-length sequence of degree d has 2^(d-1) ones per period.
	l := MustNew(MustPrimitivePoly(10), 1)
	ones := 0
	for i := 0; i < 1023; i++ {
		ones += int(l.Step())
	}
	if ones != 512 {
		t.Errorf("ones = %d, want 512", ones)
	}
}

func TestMISRRejectsBadPoly(t *testing.T) {
	if _, err := NewMISR(Poly(0b10)); err == nil {
		t.Error("bad MISR polynomial accepted")
	}
	if _, err := NewMISR(Poly(0b110100)); err == nil {
		t.Error("MISR polynomial without constant term accepted")
	}
}

// TestMISRLinearity checks the superposition property: starting from the
// zero state, sig(a XOR b) == sig(a) XOR sig(b) streamwise. Response
// compaction and signature-based pruning both rely on this.
func TestMISRLinearity(t *testing.T) {
	poly := MustPrimitivePoly(16)
	f := func(a, b [8]uint64) bool {
		ma, mb, mab := MustNewMISR(poly), MustNewMISR(poly), MustNewMISR(poly)
		for i := range a {
			ma.Clock(a[i])
			mb.Clock(b[i])
			mab.Clock(a[i] ^ b[i])
		}
		return mab.Signature() == ma.Signature()^mb.Signature()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMISRDistinguishesSingleBitErrors(t *testing.T) {
	// A single-bit error injected at any of 100 positions must produce a
	// nonzero (hence detectable) signature: the error syndrome is x^k mod
	// p(x), never zero.
	poly := MustPrimitivePoly(16)
	for pos := 0; pos < 100; pos++ {
		m := MustNewMISR(poly)
		for i := 0; i < 100; i++ {
			var in uint64
			if i == pos {
				in = 1
			}
			m.Clock(in)
		}
		if m.Signature() == 0 {
			t.Errorf("single error at position %d aliased to zero", pos)
		}
	}
}

func TestMISRSyndromesDistinctWithinPeriod(t *testing.T) {
	// Distinct single-error positions within one LFSR period yield distinct
	// syndromes (x^i mod p are distinct for i < 2^16-1). Check a prefix.
	poly := MustPrimitivePoly(16)
	seen := make(map[uint64]int)
	for pos := 0; pos < 512; pos++ {
		m := MustNewMISR(poly)
		for i := 0; i < 512; i++ {
			var in uint64
			if i == pos {
				in = 1
			}
			m.Clock(in)
		}
		if prev, dup := seen[m.Signature()]; dup {
			t.Fatalf("positions %d and %d share syndrome %#x", prev, pos, m.Signature())
		}
		seen[m.Signature()] = pos
	}
}

func TestMISRReset(t *testing.T) {
	m := MustNewMISR(MustPrimitivePoly(16))
	m.Clock(0xFFFF)
	if m.Signature() == 0 {
		t.Fatal("clocking all-ones left zero signature")
	}
	m.Reset()
	if m.Signature() != 0 {
		t.Error("Reset did not clear signature")
	}
}

func TestMISRZeroStreamZeroSignature(t *testing.T) {
	m := MustNewMISR(MustPrimitivePoly(16))
	for i := 0; i < 1000; i++ {
		m.Clock(0)
	}
	if m.Signature() != 0 {
		t.Error("zero stream produced nonzero signature")
	}
}

func TestMISRParallelInputWidth(t *testing.T) {
	// Inputs wider than the register are truncated, not smeared.
	m := MustNewMISR(MustPrimitivePoly(8))
	m.Clock(0xFFFF_FF00)
	if m.Signature() != 0 {
		t.Errorf("out-of-range input bits leaked into signature: %#x", m.Signature())
	}
}
