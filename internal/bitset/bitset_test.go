package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 {
		t.Error("zero value not empty")
	}
	s.Add(100)
	if !s.Contains(100) || s.Len() != 1 {
		t.Error("Add on zero value failed")
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(10)
	for _, e := range []int{0, 7, 63, 64, 65, 500} {
		s.Add(e)
	}
	for _, e := range []int{0, 7, 63, 64, 65, 500} {
		if !s.Contains(e) {
			t.Errorf("missing %d", e)
		}
	}
	if s.Contains(1) || s.Contains(66) || s.Contains(10000) || s.Contains(-1) {
		t.Error("contains absent element")
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Remove failed")
	}
	s.Remove(99999) // out of range: no-op
	s.Remove(-5)    // negative: no-op
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	New(4).Add(-1)
}

func TestElemsSortedAndRoundTrip(t *testing.T) {
	elems := []int{5, 1, 200, 64, 63}
	s := FromSlice(elems)
	want := []int{1, 5, 63, 64, 200}
	if got := s.Elems(); !reflect.DeepEqual(got, want) {
		t.Errorf("Elems = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	var s Set
	if s.Min() != -1 || s.Max() != -1 {
		t.Error("empty set min/max should be -1")
	}
	s2 := FromSlice([]int{42, 7, 130})
	if s2.Min() != 7 || s2.Max() != 130 {
		t.Errorf("min/max = %d/%d", s2.Min(), s2.Max())
	}
}

func TestSetOperations(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 100})
	b := FromSlice([]int{2, 3, 4, 200})

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Elems(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("intersection = %v", got)
	}

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Elems(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 100, 200}) {
		t.Errorf("union = %v", got)
	}

	d := a.Clone()
	d.SubtractWith(b)
	if got := d.Elems(); !reflect.DeepEqual(got, []int{1, 100}) {
		t.Errorf("difference = %v", got)
	}

	if !a.IntersectsWith(b) {
		t.Error("IntersectsWith false negative")
	}
	if a.IntersectsWith(FromSlice([]int{9, 999})) {
		t.Error("IntersectsWith false positive")
	}
}

func TestIntersectWithShorter(t *testing.T) {
	a := FromSlice([]int{1, 500})
	b := FromSlice([]int{1})
	a.IntersectWith(b)
	if got := a.Elems(); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("got %v", got)
	}
}

func TestEqualAcrossLengths(t *testing.T) {
	a := FromSlice([]int{3})
	b := New(1000)
	b.Add(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("Equal should ignore trailing zero words")
	}
	b.Add(900)
	if a.Equal(b) {
		t.Error("Equal missed an element in the longer set")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]int{1, 2})
	c := a.Clone()
	c.Add(3)
	if a.Contains(3) {
		t.Error("Clone shares storage")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice([]int{2, 1}).String(); got != "{1, 2}" {
		t.Errorf("String = %q", got)
	}
	var s Set
	if s.String() != "{}" {
		t.Errorf("empty String = %q", s.String())
	}
}

// TestAgainstMapModel property-tests the Set against a map[int]bool model
// under a random operation sequence.
func TestAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := &Set{}
	model := map[int]bool{}
	for op := 0; op < 5000; op++ {
		e := rng.Intn(300)
		switch rng.Intn(3) {
		case 0:
			s.Add(e)
			model[e] = true
		case 1:
			s.Remove(e)
			delete(model, e)
		case 2:
			if s.Contains(e) != model[e] {
				t.Fatalf("op %d: Contains(%d) = %v, model %v", op, e, s.Contains(e), model[e])
			}
		}
	}
	if s.Len() != len(model) {
		t.Errorf("Len = %d, model %d", s.Len(), len(model))
	}
}

// Algebraic properties via testing/quick.
func TestQuickSetAlgebra(t *testing.T) {
	mk := func(elems []uint16) *Set {
		s := &Set{}
		for _, e := range elems {
			s.Add(int(e) % 512)
		}
		return s
	}
	// De Morgan-ish: |A ∪ B| + |A ∩ B| == |A| + |B|
	f := func(ae, be []uint16) bool {
		a, b := mk(ae), mk(be)
		u := a.Clone()
		u.UnionWith(b)
		i := a.Clone()
		i.IntersectWith(b)
		return u.Len()+i.Len() == a.Len()+b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// (A − B) ∩ B == ∅ and (A − B) ∪ (A ∩ B) == A
	g := func(ae, be []uint16) bool {
		a, b := mk(ae), mk(be)
		d := a.Clone()
		d.SubtractWith(b)
		if d.IntersectsWith(b) {
			return false
		}
		i := a.Clone()
		i.IntersectWith(b)
		d.UnionWith(i)
		return d.Equal(a)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
