// Package bitset implements a dense bit set over non-negative integers,
// used to represent sets of scan cells (failing cells, candidate cells,
// partition groups) compactly and to intersect them quickly during
// diagnosis.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a growable bit set. The zero value is an empty set ready to use.
type Set struct {
	words []uint64
}

// New returns a set sized for elements in [0, n); it grows on demand.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

// FromSlice builds a set from element indices.
func FromSlice(elems []int) *Set {
	s := &Set{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts i. Negative indices panic: they always indicate a logic error
// in the caller.
func (s *Set) Add(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative element %d", i))
	}
	s.grow(i / 64)
	s.words[i/64] |= 1 << uint(i%64)
}

// Remove deletes i if present.
func (s *Set) Remove(i int) {
	if i < 0 || i/64 >= len(s.words) {
		return
	}
	s.words[i/64] &^= 1 << uint(i%64)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i/64 >= len(s.words) {
		return false
	}
	return s.words[i/64]>>uint(i%64)&1 == 1
}

// Len returns the number of elements.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset removes every element, keeping the allocated capacity — the
// building block for buffer reuse in the diagnosis hot loop.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// UnionWith adds every element of t to s.
func (s *Set) UnionWith(t *Set) {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// SubtractWith removes every element of t from s.
func (s *Set) SubtractWith(t *Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// IntersectsWith reports whether s and t share any element.
func (s *Set) IntersectsWith(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SupersetOf reports whether s contains every element of t.
func (s *Set) SupersetOf(t *Set) bool {
	for i, w := range t.words {
		var sw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if w&^sw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	longer, shorter := s.words, t.words
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	for i, w := range shorter {
		if w != longer[i] {
			return false
		}
	}
	for _, w := range longer[len(shorter):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order without allocating.
func (s *Set) ForEach(fn func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Elems returns the elements in ascending order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*64 + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s.Elems() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", e)
	}
	b.WriteByte('}')
	return b.String()
}
