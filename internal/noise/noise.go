// Package noise models an unreliable tester for scan-BIST diagnosis: an
// intermittent (marginal) defect that is active on only a fraction of
// patterns, session verdicts that are occasionally reported wrong by the
// ATE, and sessions that abort without producing any verdict. All noise is
// deterministic for a fixed seed — every coin is a stateless hash of
// (seed, session coordinates), so a run can be replayed bit-for-bit and
// independent sessions draw independent coins regardless of evaluation
// order.
package noise

import "fmt"

// Model configures the unreliable-tester fault-injection layer. The zero
// value is a perfect tester: the fault is active on every pattern, no
// verdict is flipped, and no session aborts.
type Model struct {
	// Intermittent is the probability that the injected fault is active on
	// any one pattern of a session. Zero means 1 (a deterministic,
	// always-active fault); values in (0, 1) model marginal defects that
	// fire only sometimes. Each session execution draws fresh per-pattern
	// activity.
	Intermittent float64
	// Flip is the probability that one session execution reports the wrong
	// verdict: an observed failure comes back as the golden signature, or a
	// clean run comes back with a corrupted signature.
	Flip float64
	// Abort is the probability that one session execution aborts and
	// yields no signature at all.
	Abort float64
	// Seed makes the whole noise process reproducible. Runs with equal
	// seeds and parameters draw identical coins.
	Seed uint64
}

// ActivationProb returns the effective per-pattern activation probability
// (the zero value of Intermittent normalises to 1).
func (m Model) ActivationProb() float64 {
	if m.Intermittent == 0 {
		return 1
	}
	return m.Intermittent
}

// Enabled reports whether the model injects any noise at all. A disabled
// model lets callers keep the exact deterministic code path.
func (m Model) Enabled() bool {
	return m.ActivationProb() < 1 || m.Flip > 0 || m.Abort > 0
}

// Validate checks that every probability is a probability.
func (m Model) Validate() error {
	if p := m.Intermittent; p < 0 || p > 1 {
		return fmt.Errorf("noise: intermittent probability %v outside [0, 1]", p)
	}
	if m.Flip < 0 || m.Flip > 1 {
		return fmt.Errorf("noise: flip probability %v outside [0, 1]", m.Flip)
	}
	if m.Abort < 0 || m.Abort > 1 {
		return fmt.Errorf("noise: abort probability %v outside [0, 1]", m.Abort)
	}
	return nil
}

// Fork derives a model with the same parameters but an independent seed
// substream, e.g. one per injected fault, so per-fault noise is independent
// yet reproducible and insensitive to the order faults are diagnosed in.
func (m Model) Fork(ids ...uint64) Model {
	h := m.Seed
	for _, id := range ids {
		h = mix(h, id)
	}
	m.Seed = h
	return m
}

// Coin-stream tags keep the different noise processes decorrelated even
// when their session coordinates coincide.
const (
	tagActive uint64 = 0xA11CE + iota
	tagFlip
	tagAbort
	tagCorrupt
)

// ActiveAt draws the per-pattern activation coin for one session execution:
// true when the fault fires on pattern `pat` during attempt `attempt` of
// session (t, slot). All error bits of one pattern share the coin.
func (m Model) ActiveAt(t, slot, attempt, pat int) bool {
	p := m.ActivationProb()
	if p >= 1 {
		return true
	}
	return coin(m.Seed, tagActive, uint64(t), uint64(slot), uint64(attempt), uint64(pat)) < p
}

// Flips draws the verdict-flip coin for one session execution.
func (m Model) Flips(t, slot, attempt int) bool {
	if m.Flip <= 0 {
		return false
	}
	return coin(m.Seed, tagFlip, uint64(t), uint64(slot), uint64(attempt)) < m.Flip
}

// Aborts draws the abort coin for one session execution.
func (m Model) Aborts(t, slot, attempt int) bool {
	if m.Abort <= 0 {
		return false
	}
	return coin(m.Seed, tagAbort, uint64(t), uint64(slot), uint64(attempt)) < m.Abort
}

// Corrupt returns the nonzero garbage signature a pass-to-fail flip
// reports for one session execution.
func (m Model) Corrupt(t, slot, attempt int) uint64 {
	v := hash(m.Seed, tagCorrupt, uint64(t), uint64(slot), uint64(attempt))
	if v == 0 {
		v = 1
	}
	return v
}

// coin maps a hash of the ids to [0, 1).
func coin(ids ...uint64) float64 {
	return float64(hash(ids...)>>11) * (1.0 / (1 << 53))
}

// hash folds the ids into one well-mixed 64-bit value.
func hash(ids ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, id := range ids {
		h = mix(h, id)
	}
	return h
}

// mix is the splitmix64 finalizer over h ^ v — a cheap, high-quality
// stateless PRF step.
func mix(h, v uint64) uint64 {
	z := h ^ v + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
