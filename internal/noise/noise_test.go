package noise

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	ok := []Model{
		{},
		{Intermittent: 1},
		{Intermittent: 0.3, Flip: 0.05, Abort: 0.1},
	}
	for _, m := range ok {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", m, err)
		}
	}
	bad := []Model{
		{Intermittent: -0.1},
		{Intermittent: 1.1},
		{Flip: -1},
		{Flip: 2},
		{Abort: -0.5},
		{Abort: 1.5},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an out-of-range probability", m)
		}
	}
}

func TestEnabled(t *testing.T) {
	disabled := []Model{{}, {Intermittent: 1}, {Intermittent: 1, Seed: 99}}
	for _, m := range disabled {
		if m.Enabled() {
			t.Errorf("%+v should be a perfect tester", m)
		}
	}
	enabled := []Model{
		{Intermittent: 0.5},
		{Flip: 0.01},
		{Abort: 0.01},
	}
	for _, m := range enabled {
		if !m.Enabled() {
			t.Errorf("%+v should inject noise", m)
		}
	}
}

// TestCoinsAreDeterministic: identical coordinates draw identical coins;
// the coins are pure functions of (seed, ids).
func TestCoinsAreDeterministic(t *testing.T) {
	m := Model{Intermittent: 0.4, Flip: 0.1, Abort: 0.1, Seed: 42}
	n := Model{Intermittent: 0.4, Flip: 0.1, Abort: 0.1, Seed: 42}
	for i := 0; i < 200; i++ {
		if m.ActiveAt(1, 2, 3, i) != n.ActiveAt(1, 2, 3, i) {
			t.Fatal("ActiveAt not deterministic")
		}
		if m.Flips(i, 0, 0) != n.Flips(i, 0, 0) {
			t.Fatal("Flips not deterministic")
		}
		if m.Aborts(0, i, 1) != n.Aborts(0, i, 1) {
			t.Fatal("Aborts not deterministic")
		}
		if m.Corrupt(0, 0, i) != n.Corrupt(0, 0, i) {
			t.Fatal("Corrupt not deterministic")
		}
	}
}

// TestCoinFrequencies: each coin's empirical rate matches its probability
// over many independent coordinates.
func TestCoinFrequencies(t *testing.T) {
	const draws = 100000
	m := Model{Intermittent: 0.3, Flip: 0.05, Abort: 0.1, Seed: 7}
	active, flips, aborts := 0, 0, 0
	for i := 0; i < draws; i++ {
		if m.ActiveAt(0, 0, 0, i) {
			active++
		}
		if m.Flips(0, 0, i) {
			flips++
		}
		if m.Aborts(0, 0, i) {
			aborts++
		}
	}
	check := func(name string, got int, p float64) {
		rate := float64(got) / draws
		if math.Abs(rate-p) > 0.01 {
			t.Errorf("%s rate %.4f, want %.2f ± 0.01", name, rate, p)
		}
	}
	check("active", active, 0.3)
	check("flip", flips, 0.05)
	check("abort", aborts, 0.1)
}

// TestSeedAndForkChangeTheStream: different seeds (and different Fork ids)
// yield different coin streams.
func TestSeedAndForkChangeTheStream(t *testing.T) {
	a := Model{Intermittent: 0.5, Seed: 1}
	b := Model{Intermittent: 0.5, Seed: 2}
	c := a.Fork(9)
	d := a.Fork(10)
	if c.Seed == a.Seed || c.Seed == d.Seed {
		t.Fatalf("Fork did not derive a fresh substream: %d %d %d", a.Seed, c.Seed, d.Seed)
	}
	diffAB, diffCD := 0, 0
	for i := 0; i < 1000; i++ {
		if a.ActiveAt(0, 0, 0, i) != b.ActiveAt(0, 0, 0, i) {
			diffAB++
		}
		if c.ActiveAt(0, 0, 0, i) != d.ActiveAt(0, 0, 0, i) {
			diffCD++
		}
	}
	if diffAB == 0 || diffCD == 0 {
		t.Errorf("streams coincide: seed diff %d, fork diff %d over 1000 draws", diffAB, diffCD)
	}
}

// TestDeterministicEdges: p=1 always fires without consuming entropy;
// q=0 and abort=0 never fire; corruption is never the golden signature.
func TestDeterministicEdges(t *testing.T) {
	m := Model{} // perfect tester
	for i := 0; i < 100; i++ {
		if !m.ActiveAt(0, 0, 0, i) {
			t.Fatal("p=1 fault must be active on every pattern")
		}
		if m.Flips(0, 0, i) || m.Aborts(0, 0, i) {
			t.Fatal("perfect tester flipped or aborted")
		}
	}
	n := Model{Flip: 1, Seed: 3}
	for i := 0; i < 100; i++ {
		if n.Corrupt(0, 0, i) == 0 {
			t.Fatal("corrupted signature must differ from golden (nonzero error signature)")
		}
	}
}
