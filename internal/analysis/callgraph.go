package analysis

// callgraph.go is the framework's lightweight interprocedural layer: a
// package-level call graph over the typed syntax the loader already
// produces, with one Summary of analyzer-relevant facts per function —
// allocation sites, goroutines spawned, potentially blocking operations,
// lock/unlock and WaitGroup traffic on parameters, parameters that
// escape or are mutated, results that alias parameters, and parameters
// forwarded into a simulation Scratch. Summaries record what happens
// when the function itself executes: the interior of a nested function
// literal is excluded (creating the literal is recorded as an
// allocation; whether its body ever runs is the caller's business).
//
// Param-indexed facts use receiver-inclusive indexing: for a method the
// receiver is parameter 0 and the declared parameters follow; for a
// plain function the declared parameters start at 0. Call-site argument
// lists are normalized the same way (a method call's receiver expression
// is argument 0), so facts flow uniformly through functions and methods.
//
// The graph is intraprocedural per *package* — edges link functions
// declared in the same package, calls into other packages are
// conservatively opaque — which is exactly the scope the repo's
// analyzers need: the batch kernels, the shard runtime and the codec
// each live in one package, and a fact that must cross a package
// boundary crosses an API boundary that documents it.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A FuncNode is one declared function or method of the package.
type FuncNode struct {
	// Obj is the function's types object; never nil.
	Obj *types.Func
	// Decl is the declaration carrying the body the facts came from.
	Decl *ast.FuncDecl
	// Callees are the same-package functions this one calls (statically,
	// outside nested function literals), deduplicated, in first-call
	// order. Callers is the reverse adjacency.
	Callees []*FuncNode
	Callers []*FuncNode
	// Summary holds the per-function facts, transitives already
	// propagated (see Summary).
	Summary Summary

	params   []types.Object // receiver-inclusive; nil entries for unnamed
	sites    []callSite
	retSites []callSite // call sites whose results this function returns
}

// callSite is one same-package call with its arguments resolved to the
// caller's parameter indices, for param-flow propagation.
type callSite struct {
	callee *FuncNode
	pos    token.Pos
	// argParam[i] is the caller's receiver-inclusive parameter index
	// whose object roots argument i (receiver-inclusive on the callee
	// side too), or -1.
	argParam []int
}

// An AllocSite is one statement that allocates on every execution.
type AllocSite struct {
	Pos  token.Pos
	What string // "make", "append", "func literal", ...
}

// A BlockSite is one operation that can block the goroutine.
type BlockSite struct {
	Pos  token.Pos
	What string // "channel send", "channel receive", "select", ...
}

// Summary is the per-function fact record. The param-indexed sets are
// receiver-inclusive (see the package comment) and already closed over
// same-package calls: if F passes its parameter 1 to G and G locks its
// parameter 0, then 1 ∈ F.LockParams.
type Summary struct {
	// Spawns are the positions of `go` statements in the body.
	Spawns []token.Pos
	// Allocs are the unconditional allocation sites in the body.
	// Allocations inside a panic(...) argument are not recorded: the
	// crash path is not a steady-state path.
	Allocs []AllocSite
	// Blocks are the directly blocking operations in the body: channel
	// sends and receives, selects without a default, ranging over a
	// channel, time.Sleep and sync.WaitGroup.Wait.
	Blocks []BlockSite
	// MapRanges are `range` statements iterating a map.
	MapRanges []token.Pos

	// LockParams / UnlockParams: parameters whose sync.Mutex/RWMutex
	// (possibly a field thereof) is Lock/RLock'd, resp. Unlock/RUnlock'd.
	LockParams   []int
	UnlockParams []int
	// WaitParams / DoneParams: parameters whose sync.WaitGroup receives
	// a Wait, resp. a Done.
	WaitParams []int
	DoneParams []int
	// MutatesParams: pointer-like parameters written through (field or
	// element assignment, or a mutating same-package call).
	MutatesParams []int
	// EscapeParams: parameters whose referent may outlive the call —
	// stored into a field, map or slice element, a package-level
	// variable, sent on a channel, appended to a slice, or captured in a
	// composite literal.
	EscapeParams []int
	// ScratchParams: parameters forwarded (possibly through further
	// same-package calls) into a RunInto/MaterializeBatch scratch slot,
	// i.e. calling this function reuses that scratch.
	ScratchParams []int
	// ResultAliasParams: parameters that some result value may alias
	// (returned directly, through a field/index chain, or via a
	// same-package call that aliases its own parameter).
	ResultAliasParams []int
}

func hasIndex(s []int, i int) bool {
	for _, v := range s {
		if v == i {
			return true
		}
	}
	return false
}

func addIndex(s *[]int, i int) bool {
	if i < 0 || hasIndex(*s, i) {
		return false
	}
	*s = append(*s, i)
	return true
}

// CallGraph is the package-level call graph with computed summaries.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
	order []*FuncNode // declaration order

	blockMemo map[*FuncNode]*BlockSite
	blockDone map[*FuncNode]bool
}

// CallGraph returns the pass's package call graph, built on first use
// and shared by every analyzer running over the same loaded package.
func (p *Pass) CallGraph() *CallGraph {
	if p.pkgRef != nil {
		p.pkgRef.cgOnce.Do(func() {
			p.pkgRef.cg = NewCallGraph(p.Files, p.TypesInfo)
		})
		return p.pkgRef.cg
	}
	return NewCallGraph(p.Files, p.TypesInfo)
}

// NewCallGraph builds the call graph and summaries for one typechecked
// package.
func NewCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{
		nodes:     make(map[*types.Func]*FuncNode),
		blockMemo: make(map[*FuncNode]*BlockSite),
		blockDone: make(map[*FuncNode]bool),
	}
	// Pass 1: nodes for every declared function with a body.
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &FuncNode{Obj: obj, Decl: fd, params: paramObjects(info, fd)}
			g.nodes[obj] = n
			g.order = append(g.order, n)
		}
	}
	// Pass 2: per-function direct facts and call edges.
	for _, n := range g.order {
		collectFacts(g, n, info)
	}
	// Pass 3: close the param-indexed facts over same-package calls.
	g.propagateParamFacts()
	return g
}

// Funcs returns every function of the package in declaration order.
func (g *CallGraph) Funcs() []*FuncNode { return g.order }

// Node returns the node for a declared function, or nil for functions
// without syntax in this package (imports, interface methods).
func (g *CallGraph) Node(obj *types.Func) *FuncNode { return g.nodes[obj] }

// CalleeOf resolves a call expression to the same-package function it
// statically invokes, or nil (other packages, interface or func-value
// calls, builtins).
func (g *CallGraph) CalleeOf(info *types.Info, call *ast.CallExpr) *FuncNode {
	if fn := staticCallee(info, call); fn != nil {
		return g.nodes[fn]
	}
	return nil
}

// Reachable returns the set of functions reachable from roots along
// call edges, roots included.
func (g *CallGraph) Reachable(roots ...*FuncNode) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	var stack []*FuncNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.Callees {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// Path returns a call chain from one of roots to target as function
// names ("A → B → target"), or nil if unreachable; used to explain
// transitive findings.
func (g *CallGraph) Path(target *FuncNode, roots ...*FuncNode) []string {
	parent := make(map[*FuncNode]*FuncNode)
	seen := make(map[*FuncNode]bool)
	var queue []*FuncNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == target {
			var rev []string
			for m := n; m != nil; m = parent[m] {
				rev = append(rev, m.Obj.Name())
			}
			out := make([]string, len(rev))
			for i, s := range rev {
				out[len(rev)-1-i] = s
			}
			return out
		}
		for _, c := range n.Callees {
			if !seen[c] {
				seen[c] = true
				parent[c] = n
				queue = append(queue, c)
			}
		}
	}
	return nil
}

// Blocks reports whether calling n can block, and if so returns the
// witnessing direct block site (n's own, or the first one found down
// the call chain). Cycles with no base fact do not block.
func (g *CallGraph) Blocks(n *FuncNode) (*BlockSite, bool) {
	if g.blockDone[n] {
		return g.blockMemo[n], g.blockMemo[n] != nil
	}
	visiting := make(map[*FuncNode]bool)
	site := g.blocksDFS(n, visiting)
	g.blockDone[n] = true
	g.blockMemo[n] = site
	return site, site != nil
}

func (g *CallGraph) blocksDFS(n *FuncNode, visiting map[*FuncNode]bool) *BlockSite {
	if g.blockDone[n] {
		return g.blockMemo[n]
	}
	if visiting[n] {
		return nil // in-progress: least fixpoint, the cycle adds nothing
	}
	visiting[n] = true
	defer delete(visiting, n)
	if len(n.Summary.Blocks) > 0 {
		return &n.Summary.Blocks[0]
	}
	for _, c := range n.Callees {
		if s := g.blocksDFS(c, visiting); s != nil {
			return s
		}
	}
	return nil
}

// ParamIndex returns obj's receiver-inclusive parameter index in n, or
// -1 when obj is not one of n's parameters.
func (n *FuncNode) ParamIndex(obj types.Object) int {
	if obj == nil {
		return -1
	}
	for i, p := range n.params {
		if p == obj {
			return i
		}
	}
	return -1
}

// NumParams returns the receiver-inclusive parameter count.
func (n *FuncNode) NumParams() int { return len(n.params) }

// paramObjects lists a declaration's parameter objects receiver-first;
// unnamed and blank parameters hold nil placeholders to keep indices
// aligned with the signature.
func paramObjects(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range f.Names {
				if name.Name == "_" {
					out = append(out, nil)
					continue
				}
				out = append(out, info.Defs[name])
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return out
}

// staticCallee resolves the *types.Func a call statically invokes:
// a plain identifier or a method/package selector. Func values,
// builtins, conversions and interface dispatch return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return nil // interface dispatch: target unknown
		}
	}
	return fn
}

// ExprRoot unwraps an expression to the object its value chain roots
// at: the variable behind any stack of selections, indexing, address
// and dereference operations. Calls and literals root nowhere.
func ExprRoot(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			// pkg.Var / obj.Field both continue at X unless X is a
			// package name, in which case Sel is the root.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return info.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// propagateParamFacts closes the param-indexed summary sets over
// same-package call sites, iterating to a fixpoint (the sets only grow
// and are bounded by parameter counts, so this terminates).
func (g *CallGraph) propagateParamFacts() {
	flows := []func(*Summary) *[]int{
		func(s *Summary) *[]int { return &s.LockParams },
		func(s *Summary) *[]int { return &s.UnlockParams },
		func(s *Summary) *[]int { return &s.WaitParams },
		func(s *Summary) *[]int { return &s.DoneParams },
		func(s *Summary) *[]int { return &s.MutatesParams },
		func(s *Summary) *[]int { return &s.EscapeParams },
		func(s *Summary) *[]int { return &s.ScratchParams },
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			for _, cs := range n.sites {
				callee := cs.callee
				for _, sel := range flows {
					for _, q := range *sel(&callee.Summary) {
						if q < len(cs.argParam) {
							if addIndex(sel(&n.Summary), cs.argParam[q]) {
								changed = true
							}
						}
					}
				}
				// Result aliasing flows only through calls whose results
				// are returned; collectFacts records those as pending
				// (argParam rows reused): handled below via returnCalls.
			}
			for _, rc := range n.returnCalls() {
				for _, q := range rc.callee.Summary.ResultAliasParams {
					if q < len(rc.argParam) {
						if addIndex(&n.Summary.ResultAliasParams, rc.argParam[q]) {
							changed = true
						}
					}
				}
			}
		}
	}
}

// returnCalls lists the call sites whose results the function returns,
// recorded by collectFacts for result-alias propagation.
func (n *FuncNode) returnCalls() []callSite { return n.retSites }
