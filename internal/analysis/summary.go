package analysis

// summary.go collects each function's direct Summary facts and call
// edges from its body. See callgraph.go for the fact vocabulary and the
// nested-function-literal convention.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// collectFacts walks one function body, recording direct facts on
// n.Summary and call edges on the graph.
func collectFacts(g *CallGraph, n *FuncNode, info *types.Info) {
	c := &factCollector{g: g, n: n, info: info, seenEdge: make(map[*FuncNode]bool)}
	// Pre-scan assignments so self-appends (x = append(x, ...)) are not
	// reported as allocations: amortized growth of a reused buffer is
	// the repo's sanctioned zero-steady-state-alloc idiom.
	c.selfAppends = make(map[*ast.CallExpr]bool)
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if as, ok := x.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(info, call, "append") && len(call.Args) > 0 {
					if exprPath(as.Lhs[i]) != "" && exprPath(as.Lhs[i]) == exprPath(call.Args[0]) {
						c.selfAppends[call] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(n.Decl.Body, c.visit)
}

type factCollector struct {
	g           *CallGraph
	n           *FuncNode
	info        *types.Info
	selfAppends map[*ast.CallExpr]bool
	seenEdge    map[*FuncNode]bool
}

func (c *factCollector) visit(x ast.Node) bool {
	s := &c.n.Summary
	switch x := x.(type) {
	case *ast.FuncLit:
		// The literal's interior belongs to whoever eventually calls it;
		// creating the closure here is the allocation.
		s.Allocs = append(s.Allocs, AllocSite{x.Pos(), "func literal"})
		return false
	case *ast.GoStmt:
		// The spawned call runs on the new goroutine: no call edge, no
		// blocking fact, but spawning itself is a fact and an allocation.
		s.Spawns = append(s.Spawns, x.Pos())
		s.Allocs = append(s.Allocs, AllocSite{x.Pos(), "go statement"})
		return false
	case *ast.SendStmt:
		s.Blocks = append(s.Blocks, BlockSite{x.Arrow, "channel send"})
		c.escapeRoot(x.Value, "sent on a channel")
		return true
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			s.Blocks = append(s.Blocks, BlockSite{x.OpPos, "channel receive"})
		}
		return true
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			s.Blocks = append(s.Blocks, BlockSite{x.Select, "select"})
		}
		return true
	case *ast.RangeStmt:
		switch c.typeOf(x.X).(type) {
		case *types.Map:
			s.MapRanges = append(s.MapRanges, x.For)
		case *types.Chan:
			s.Blocks = append(s.Blocks, BlockSite{x.For, "channel receive (range)"})
		}
		return true
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			if t, ok := c.typeOf(x).(*types.Basic); ok && t.Info()&types.IsString != 0 {
				s.Allocs = append(s.Allocs, AllocSite{x.OpPos, "string concatenation"})
			}
		}
		return true
	case *ast.CompositeLit:
		switch c.typeOf(x).(type) {
		case *types.Slice, *types.Map:
			s.Allocs = append(s.Allocs, AllocSite{x.Pos(), "composite literal"})
		}
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			c.escapeRoot(elt, "captured in a composite literal")
		}
		return true
	case *ast.AssignStmt:
		c.visitAssign(x)
		return true
	case *ast.IncDecStmt:
		c.mutateRoot(x.X)
		return true
	case *ast.ReturnStmt:
		c.visitReturn(x)
		return true
	case *ast.CallExpr:
		return c.visitCall(x)
	}
	return true
}

func (c *factCollector) typeOf(e ast.Expr) types.Type {
	t := c.info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// paramOf maps an expression to the receiver-inclusive parameter index
// its value chain roots at, or -1.
func (c *factCollector) paramOf(e ast.Expr) int {
	return c.n.ParamIndex(ExprRoot(c.info, e))
}

// escapeRoot records rhs's root parameter as escaping when its type can
// carry a reference.
func (c *factCollector) escapeRoot(rhs ast.Expr, how string) {
	if p := c.paramOf(rhs); p >= 0 && isRefLike(c.info.TypeOf(rhs)) {
		addIndex(&c.n.Summary.EscapeParams, p)
	}
	_ = how
}

// mutateRoot records a write through lhs against its root parameter.
func (c *factCollector) mutateRoot(lhs ast.Expr) {
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if p := c.paramOf(lhs); p >= 0 {
			addIndex(&c.n.Summary.MutatesParams, p)
		}
	}
}

func (c *factCollector) visitAssign(as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		c.mutateRoot(lhs)
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			c.escapeRoot(as.Rhs[i], "stored in a field or element")
			_ = l
		case *ast.Ident:
			// Assignment to a package-level variable escapes.
			if v, ok := c.info.Uses[l].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
				c.escapeRoot(as.Rhs[i], "stored in a package-level variable")
			}
		}
	}
}

func (c *factCollector) visitReturn(ret *ast.ReturnStmt) {
	for _, e := range ret.Results {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			// Returning the scratch-backed result of RunInto or
			// MaterializeBatch aliases the scratch argument.
			if p := c.scratchArgParam(call); p >= 0 {
				addIndex(&c.n.Summary.ResultAliasParams, p)
			}
			// Returning a same-package call's result: alias facts flow in
			// the propagation fixpoint.
			if site, ok := c.siteFor(call); ok {
				c.n.retSites = append(c.n.retSites, site)
			}
			continue
		}
		if p := c.paramOf(e); p >= 0 && isRefLike(c.info.TypeOf(e)) {
			addIndex(&c.n.Summary.ResultAliasParams, p)
		}
	}
}

func (c *factCollector) visitCall(call *ast.CallExpr) bool {
	s := &c.n.Summary
	// panic(...) arguments run only on the crash path; nothing inside is
	// a steady-state fact.
	if isBuiltin(c.info, call, "panic") {
		return false
	}
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string ↔ []byte/[]rune copies.
		if conversionAllocates(c.info.TypeOf(call.Fun), c.info.TypeOf(call.Args[0])) {
			s.Allocs = append(s.Allocs, AllocSite{call.Pos(), "string conversion"})
		}
		return true
	}
	switch {
	case isBuiltin(c.info, call, "make"):
		s.Allocs = append(s.Allocs, AllocSite{call.Pos(), "make"})
	case isBuiltin(c.info, call, "new"):
		s.Allocs = append(s.Allocs, AllocSite{call.Pos(), "new"})
	case isBuiltin(c.info, call, "append"):
		if !c.selfAppends[call] {
			s.Allocs = append(s.Allocs, AllocSite{call.Pos(), "append into a new backing array"})
		}
		for _, arg := range call.Args[1:] {
			c.escapeRoot(arg, "appended to a slice")
		}
	}

	if fn := staticCallee(c.info, call); fn != nil {
		c.specialCall(call, fn)
		if callee := c.g.nodes[fn]; callee != nil {
			if site, ok := c.siteFor(call); ok {
				c.n.sites = append(c.n.sites, site)
				if !c.seenEdge[callee] {
					c.seenEdge[callee] = true
					c.n.Callees = append(c.n.Callees, callee)
					callee.Callers = append(callee.Callers, c.n)
				}
			}
		}
	}
	c.boxingArgs(call)
	return true
}

// siteFor builds the receiver-inclusive call site record for a static
// same-package call.
func (c *factCollector) siteFor(call *ast.CallExpr) (callSite, bool) {
	fn := staticCallee(c.info, call)
	if fn == nil {
		return callSite{}, false
	}
	callee := c.g.nodes[fn]
	if callee == nil {
		return callSite{}, false
	}
	site := callSite{callee: callee, pos: call.Pos()}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fnHasRecv(fn) {
		site.argParam = append(site.argParam, c.paramOf(sel.X))
	}
	for _, arg := range call.Args {
		site.argParam = append(site.argParam, c.paramOf(arg))
	}
	return site, true
}

func fnHasRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// specialCall records lock, WaitGroup, sleep and scratch facts for one
// resolved call.
func (c *factCollector) specialCall(call *ast.CallExpr, fn *types.Func) {
	s := &c.n.Summary
	if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
		s.Blocks = append(s.Blocks, BlockSite{call.Pos(), "time.Sleep"})
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		// Not a method-style call; scratch calls are methods, locks too.
		if p := c.scratchArgParam(call); p >= 0 {
			addIndex(&s.ScratchParams, p)
		}
		return
	}
	recvT := c.info.TypeOf(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		if isSyncType(recvT, "Mutex") || isSyncType(recvT, "RWMutex") {
			addIndex(&s.LockParams, c.paramOf(sel.X))
		}
	case "Unlock", "RUnlock":
		if isSyncType(recvT, "Mutex") || isSyncType(recvT, "RWMutex") {
			addIndex(&s.UnlockParams, c.paramOf(sel.X))
		}
	case "Wait":
		if isSyncType(recvT, "WaitGroup") {
			s.Blocks = append(s.Blocks, BlockSite{call.Pos(), "WaitGroup.Wait"})
			addIndex(&s.WaitParams, c.paramOf(sel.X))
		}
	case "Done":
		if isSyncType(recvT, "WaitGroup") {
			addIndex(&s.DoneParams, c.paramOf(sel.X))
		}
	}
	if p := c.scratchArgParam(call); p >= 0 {
		addIndex(&c.n.Summary.ScratchParams, p)
	}
}

// scratchArgParam recognises direct RunInto/MaterializeBatch calls and
// returns the parameter index rooting the Scratch argument, or -1.
func (c *factCollector) scratchArgParam(call *ast.CallExpr) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "RunInto" && sel.Sel.Name != "MaterializeBatch") {
		return -1
	}
	for _, arg := range call.Args {
		if isScratch(c.info.TypeOf(arg)) {
			if p := c.paramOf(arg); p >= 0 {
				return p
			}
		}
	}
	return -1
}

// boxingArgs records interface conversions at call boundaries: a
// concrete-typed argument passed to an interface-typed parameter is
// boxed, which may allocate.
func (c *factCollector) boxingArgs(call *ast.CallExpr) {
	sig, ok := c.info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := c.info.TypeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		c.n.Summary.Allocs = append(c.n.Summary.Allocs, AllocSite{arg.Pos(), "interface conversion"})
	}
}

// conversionAllocates reports string↔[]byte/[]rune conversions, which
// copy their operand.
func conversionAllocates(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStr(from))
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isSyncType reports whether t is (a pointer to) sync.<name>.
func isSyncType(t types.Type, name string) bool {
	t = deref(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isScratch reports whether t is (a pointer to) a named type Scratch,
// the convention shared with the scratchalias analyzer.
func isScratch(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	return ok && named.Obj().Name() == "Scratch"
}

func deref(t types.Type) types.Type {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = ptr.Elem()
	}
}

// isRefLike reports whether values of t can carry references to other
// memory; plain scalars and strings cannot.
func isRefLike(t types.Type) bool {
	return refLike(t, make(map[types.Type]bool))
}

// refLike is isRefLike's worker: structs and arrays carry a reference
// only when some field or element (transitively) does, so copying a
// plain value struct is not an escape. seen breaks recursive types.
func refLike(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map,
		*types.Interface, *types.Chan, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLike(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return refLike(u.Elem(), seen)
	}
	return false
}

// exprPath renders a selector/index chain as a stable string for
// self-append matching; expressions outside the vocabulary render "".
func exprPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base := exprPath(x.X)
		idx := exprPath(x.Index)
		if base == "" {
			return ""
		}
		if idx == "" {
			if lit, ok := x.Index.(*ast.BasicLit); ok {
				idx = lit.Value
			} else {
				return ""
			}
		}
		return base + "[" + idx + "]"
	case *ast.StarExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return "*" + base
	}
	return ""
}
