package analysis

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestGoFilesInHonorsBuildConstraints pins the loader's file selection on
// packages with per-architecture variants: exactly one of a
// constraint-paired file set may survive, matching what the compiler
// builds. Before this check the fallback lister fed both kernel_amd64.go
// and kernel_generic.go to the typechecker, which reported a duplicate
// declaration that `go build` never sees.
func TestGoFilesInHonorsBuildConstraints(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("always.go", "package p\n")
	write("never.go", "//go:build never\n\npackage p\n")
	write("k_"+runtime.GOARCH+".go", "package p\n")
	write("k_generic.go", "//go:build !"+runtime.GOARCH+"\n\npackage p\n")
	write("p_test.go", "package p\n")

	files, err := goFilesIn(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"always.go", "k_" + runtime.GOARCH + ".go"}
	if len(files) != len(want) {
		t.Fatalf("goFilesIn = %v, want %v", files, want)
	}
	for i := range want {
		if files[i] != want[i] {
			t.Fatalf("goFilesIn = %v, want %v", files, want)
		}
	}
}
