package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded and typechecked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/sim"); external test
	// packages carry a "_test" suffix.
	Path string
	// Dir is the directory holding the sources.
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// cg is the lazily built interprocedural call graph, shared by
	// every analyzer pass over this package (see Pass.CallGraph).
	cgOnce sync.Once
	cg     *CallGraph
}

// A Loader typechecks packages from source. Module-local imports are
// resolved through a directory mapping and typechecked recursively;
// everything else falls through to the standard library's source
// importer, which reads GOROOT. No compiled export data is required, so
// the loader works in offline sandboxes where the build cache is cold.
type Loader struct {
	// Tests controls whether in-package _test.go files are included in
	// the syntax of target packages (imports never include them).
	Tests bool

	fset    *token.FileSet
	dirs    map[string]string // import path -> source dir, for module-local packages
	std     types.Importer
	cache   map[string]*types.Package
	loading map[string]bool
	errs    []error
}

// NewLoader returns a loader resolving the given import-path-to-directory
// mapping locally and everything else through GOROOT source.
func NewLoader(dirs map[string]string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		fset:    fset,
		dirs:    dirs,
		cache:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil)
	return l
}

// Fset exposes the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path, Dir string }
	Error        *struct{ Err string }
}

// Load enumerates packages with `go list` and typechecks each from
// source, including in-package test files; external test packages
// (package foo_test) are returned as separate entries. The returned
// error aggregates every type error so a driver can print them all.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, patterns...)...)
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		listed = append(listed, p)
	}

	// Every listed package resolves by its own Dir; anything else in the
	// module resolves relative to the module root.
	dirs := make(map[string]string, len(listed))
	var modPath, modDir string
	for _, p := range listed {
		dirs[p.ImportPath] = p.Dir
		if p.Module != nil {
			modPath, modDir = p.Module.Path, p.Module.Dir
		}
	}
	if modPath != "" {
		addModuleDirs(dirs, modPath, modDir)
	}

	l := NewLoader(dirs)
	l.Tests = true
	var pkgs []*Package
	for _, p := range listed {
		pkg, err := l.loadTarget(p.ImportPath, p.Dir, append(append([]string{}, p.GoFiles...), p.TestGoFiles...))
		if err != nil {
			l.errs = append(l.errs, err)
		} else if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		if len(p.XTestGoFiles) > 0 {
			xt, err := l.loadTarget(p.ImportPath+"_test", p.Dir, p.XTestGoFiles)
			if err != nil {
				l.errs = append(l.errs, err)
			} else if xt != nil {
				pkgs = append(pkgs, xt)
			}
		}
	}
	return pkgs, joinErrors(l.errs)
}

// addModuleDirs walks the module tree once and registers a directory for
// every package, so imports of module packages outside the requested
// pattern set still resolve locally.
func addModuleDirs(dirs map[string]string, modPath, modDir string) {
	filepath.Walk(modDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || !info.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if strings.HasPrefix(base, ".") || base == "testdata" || base == "vendor" {
			if path != modDir {
				return filepath.SkipDir
			}
		}
		rel, err := filepath.Rel(modDir, path)
		if err != nil {
			return nil
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, ok := dirs[ip]; !ok {
			dirs[ip] = path
		}
		return nil
	})
}

// LoadDirs typechecks the named import paths, each resolved through the
// dirs mapping (used by the analysistest harness, where fixture packages
// live under a testdata GOPATH-style tree).
func (l *Loader) LoadDirs(paths ...string) ([]*Package, error) {
	var pkgs []*Package
	for _, path := range paths {
		dir, ok := l.dirs[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no directory mapped for %q", path)
		}
		files, err := goFilesIn(dir, l.Tests)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadTarget(path, dir, files)
		if err != nil {
			l.errs = append(l.errs, err)
		} else if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, joinErrors(l.errs)
}

// loadTarget parses and typechecks one target package from an explicit
// file list. Unlike imports, targets are not cached: their syntax may
// include test files, which importers of the same path must not see.
func (l *Loader) loadTarget(path, dir string, files []string) (*Package, error) {
	if len(files) == 0 {
		return nil, nil
	}
	syntax, err := l.parseFiles(dir, files)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	var terrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, syntax, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("analysis: typechecking %s: %v", path, joinErrors(terrs))
	}
	return &Package{
		Path: path, Dir: dir,
		Fset: l.fset, Syntax: syntax,
		Types: tpkg, TypesInfo: info,
	}, nil
}

// Import implements types.Importer: module-local paths are typechecked
// from source (non-test files only) and memoized; all other paths are
// delegated to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirs[path]
	if !ok {
		return l.std.Import(path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := goFilesIn(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s for %s", dir, path)
	}
	syntax, err := l.parseFiles(dir, files)
	if err != nil {
		return nil, err
	}
	var terrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, syntax, nil)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("typechecking import %s: %v", path, terrs[0])
	}
	l.cache[path] = pkg
	return pkg, nil
}

func (l *Loader) parseFiles(dir string, files []string) ([]*ast.File, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	return syntax, nil
}

// goFilesIn lists the .go sources of dir that build on the host platform,
// optionally including tests. Build constraints — //go:build lines and
// GOOS/GOARCH filename suffixes — are honored via go/build's matcher, so a
// package with per-architecture variants of one function typechecks with
// exactly one declaration, like the compiler sees it.
func goFilesIn(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

func joinErrors(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}
