// Package analysis is a minimal, dependency-free reimplementation of the
// go/analysis vocabulary: an Analyzer inspects one typechecked package
// through a Pass and reports Diagnostics. It exists so the repository can
// carry custom linters for its own invariants (deterministic randomness,
// scratch-buffer aliasing, error-message conventions) without importing
// golang.org/x/tools; only the standard library's go/* packages are used.
//
// The model is intentionally the familiar one — an Analyzer has a Name, a
// Doc string and a Run function; Run receives a Pass holding the syntax
// trees, the *types.Package and the *types.Info — so that analyzers
// written here could be ported to the real framework by changing imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// ID is the analyzer's stable rule identifier for machine-readable
	// reports (JSON, SARIF); it never changes once assigned, even if the
	// analyzer is renamed. Optional: drivers fall back to Name.
	ID string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the check to a single package. Diagnostics are
	// delivered through pass.Report; the error return is for failures
	// of the analyzer itself, not findings.
	Run func(*Pass) error
}

// A Pass presents one typechecked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Never nil.
	Report func(Diagnostic)

	// pkgRef backs the per-package call-graph cache; nil for passes
	// constructed outside Run, which then build a private graph.
	pkgRef *Package
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file of the pass in depth-first order, calling fn
// for each node; fn returning false prunes that subtree (ast.Inspect
// semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// A Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a diagnostic bound to the analyzer and package that
// produced it, as returned by Run.
type Finding struct {
	Analyzer *Analyzer
	Package  *Package
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer.Name)
}

// Run applies every analyzer to every package and returns the findings
// sorted by file, line and column. Analyzer errors (not findings) are
// returned after all packages have been visited.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var (
		findings []Finding
		firstErr error
	)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				pkgRef:    pkg,
			}
			p := pkg
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a,
					Package:  p,
					Position: p.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, firstErr
}
