// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring the conventions of
// the upstream harness of the same name: fixtures live in a GOPATH-style
// tree testdata/src/<importpath>, and a line expecting diagnostics
// carries a trailing comment
//
//	// want "regexp" "another regexp"
//
// with one double-quoted regular expression per expected diagnostic on
// that line. Unexpected diagnostics and unmatched expectations both fail
// the test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package from testdata/src/<path>, applies the
// analyzer, and reports mismatches between its diagnostics and the
// fixtures' want comments on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	srcroot := filepath.Join(testdata, "src")
	dirs, err := fixtureDirs(srcroot)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader := analysis.NewLoader(dirs)
	loader.Tests = true
	pkgs, err := loader.LoadDirs(paths...)
	if err != nil {
		t.Fatalf("analysistest: loading fixtures: %v", err)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	for _, f := range findings {
		k := lineKey{f.Position.Filename, f.Position.Line}
		exps := wants[k]
		matched := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(f.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
		}
	}
	for k, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, e.raw)
			}
		}
	}
}

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// lineKey addresses one source line across the fixture set.
type lineKey struct {
	file string
	line int
}

// collectWants scans every fixture file's comments for want expectations,
// keyed by the comment's file and line.
func collectWants(t *testing.T, pkgs []*analysis.Package) map[lineKey][]*expectation {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					raws, err := parseWant(c.Text)
					if err != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s: %v", pos, err)
					}
					if len(raws) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, raw := range raws {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
						}
						k := lineKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], &expectation{re: re, raw: raw})
					}
				}
			}
		}
	}
	return wants
}

// parseWant extracts the quoted patterns from a `// want "p1" "p2"`
// comment, returning nil for comments that are not want directives.
func parseWant(comment string) ([]string, error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	var pats []string
	for rest != "" {
		if rest[0] != '"' {
			return nil, fmt.Errorf("want directive: expected quoted pattern at %q", rest)
		}
		// Find the closing quote, honouring backslash escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("want directive: unterminated pattern in %q", rest)
		}
		pat, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("want directive: %v in %q", err, rest[:end+1])
		}
		pats = append(pats, pat)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return pats, nil
}

// fixtureDirs maps every package directory under srcroot to its
// GOPATH-style import path.
func fixtureDirs(srcroot string) (map[string]string, error) {
	dirs := make(map[string]string)
	err := filepath.Walk(srcroot, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(srcroot, path)
		if err != nil || rel == "." {
			return err
		}
		dirs[filepath.ToSlash(rel)] = path
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("walking %s: %v", srcroot, err)
	}
	return dirs, nil
}
