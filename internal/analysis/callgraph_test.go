package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkPkg typechecks one in-memory source file into the pieces a
// CallGraph needs.
func checkPkg(t *testing.T, src string) (*ast.File, *types.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return f, info, pkg
}

func graphFor(t *testing.T, src string) (*CallGraph, *types.Info) {
	t.Helper()
	f, info, _ := checkPkg(t, src)
	return NewCallGraph([]*ast.File{f}, info), info
}

func nodeNamed(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Funcs() {
		if n.Obj.Name() == name {
			return n
		}
	}
	t.Fatalf("no function %q in graph", name)
	return nil
}

func TestCallGraphEdgesAndReachability(t *testing.T) {
	g, _ := graphFor(t, `package p
func a() { b(); c() }
func b() { c() }
func c() {}
func island() {}
`)
	a, b, c := nodeNamed(t, g, "a"), nodeNamed(t, g, "b"), nodeNamed(t, g, "c")
	island := nodeNamed(t, g, "island")
	if len(a.Callees) != 2 || a.Callees[0] != b || a.Callees[1] != c {
		t.Errorf("a.Callees = %v, want [b c]", names(a.Callees))
	}
	reach := g.Reachable(a)
	if !reach[c] || reach[island] {
		t.Errorf("Reachable(a): c=%v island=%v, want true/false", reach[c], reach[island])
	}
	if path := g.Path(c, a); len(path) != 2 || path[0] != "a" || path[1] != "c" {
		t.Errorf("Path(c from a) = %v, want [a c] (direct edge wins BFS)", path)
	}
}

func names(ns []*FuncNode) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Obj.Name()
	}
	return out
}

func TestSummaryAllocsAndSpawns(t *testing.T) {
	g, _ := graphFor(t, `package p
func hot(b []byte) int {
	s := make([]int, 4)          // make
	s = append(s, 1)             // self-append: not an alloc
	t := append(s, 2)            // append into a new variable: alloc
	_ = t
	f := func() {}               // func literal: alloc; interior excluded
	_ = f
	go work()                    // spawn + alloc
	msg := string(b)             // string conversion
	msg = msg + "!"              // concatenation
	_ = msg
	return len(s)
}
func work() { ch := make(chan int); <-ch }
`)
	hot := nodeNamed(t, g, "hot")
	wantKinds := map[string]int{
		"make": 1, "append into a new backing array": 1, "func literal": 1,
		"go statement": 1, "string conversion": 1, "string concatenation": 1,
	}
	got := map[string]int{}
	for _, a := range hot.Summary.Allocs {
		got[a.What]++
	}
	for k, n := range wantKinds {
		if got[k] != n {
			t.Errorf("hot allocs[%q] = %d, want %d (all: %v)", k, got[k], n, got)
		}
	}
	if len(hot.Summary.Spawns) != 1 {
		t.Errorf("hot spawns = %d, want 1", len(hot.Summary.Spawns))
	}
	// work's channel ops must not leak into hot: go statements create no
	// call edge.
	if len(hot.Callees) != 0 {
		t.Errorf("hot.Callees = %v, want none (go statement is not a call edge)", names(hot.Callees))
	}
	if _, blocks := g.Blocks(hot); blocks {
		t.Error("hot reported blocking; the spawned goroutine blocks, not hot")
	}
}

func TestSummaryPanicPathExempt(t *testing.T) {
	g, _ := graphFor(t, `package p
import "fmt"
func guard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("p: negative %d", n))
	}
}
`)
	guard := nodeNamed(t, g, "guard")
	if len(guard.Summary.Allocs) != 0 {
		t.Errorf("guard allocs = %v, want none: panic arguments are crash-path only", guard.Summary.Allocs)
	}
}

func TestSummaryBlockingTransitive(t *testing.T) {
	g, _ := graphFor(t, `package p
func top() { mid() }
func mid() { leaf() }
func leaf() { ch := make(chan int, 1); ch <- 1 }
func calm() {}
func cycleA() { cycleB() }
func cycleB() { cycleA() }
`)
	if site, ok := g.Blocks(nodeNamed(t, g, "top")); !ok || site.What != "channel send" {
		t.Errorf("top blocking = %v/%v, want channel send through mid→leaf", site, ok)
	}
	if _, ok := g.Blocks(nodeNamed(t, g, "calm")); ok {
		t.Error("calm reported blocking")
	}
	if _, ok := g.Blocks(nodeNamed(t, g, "cycleA")); ok {
		t.Error("a pure call cycle with no base fact reported blocking")
	}
}

func TestSummaryParamFlow(t *testing.T) {
	g, _ := graphFor(t, `package p
import "sync"

type box struct{ kept []int }

var global []int

func waitHelper(wg *sync.WaitGroup) { wg.Wait() }
func deepWait(wg *sync.WaitGroup)   { waitHelper(wg) }
func lockIt(mu *sync.Mutex)         { mu.Lock() }
func unlockIt(mu *sync.Mutex)       { mu.Unlock() }
func stash(b *box, s []int)         { b.kept = s }
func stashGlobal(s []int)           { global = s }
func deepStash(b *box, s []int)     { stash(b, s) }

type ident struct{ id, gen int }
type holder struct{ last ident }

func keepIdent(h *holder, id ident) { h.last = id }
func keepBox(h *struct{ b box }, b box) { h.b = b }
func (b *box) poke()                { b.kept = nil }
func pokeVia(b *box)                { b.poke() }
`)
	check := func(fn string, sel func(Summary) []int, want ...int) {
		t.Helper()
		got := sel(nodeNamed(t, g, fn).Summary)
		if len(got) != len(want) {
			t.Errorf("%s: param set = %v, want %v", fn, got, want)
			return
		}
		for _, w := range want {
			if !hasIndex(got, w) {
				t.Errorf("%s: param set = %v, want %v", fn, got, want)
			}
		}
	}
	check("waitHelper", func(s Summary) []int { return s.WaitParams }, 0)
	check("deepWait", func(s Summary) []int { return s.WaitParams }, 0)
	check("lockIt", func(s Summary) []int { return s.LockParams }, 0)
	check("unlockIt", func(s Summary) []int { return s.UnlockParams }, 0)
	check("stash", func(s Summary) []int { return s.EscapeParams }, 1)
	check("stashGlobal", func(s Summary) []int { return s.EscapeParams }, 0)
	check("deepStash", func(s Summary) []int { return s.EscapeParams }, 1)
	// Storing a pure value struct copies it — no reference escapes; a
	// struct carrying a slice still does.
	check("keepIdent", func(s Summary) []int { return s.EscapeParams })
	check("keepBox", func(s Summary) []int { return s.EscapeParams }, 1)
	check("poke", func(s Summary) []int { return s.MutatesParams }, 0)
	check("pokeVia", func(s Summary) []int { return s.MutatesParams }, 0)
}

func TestSummaryScratchAndResultAlias(t *testing.T) {
	g, _ := graphFor(t, `package p

type Scratch struct{ vals []int }
type Result struct{ vals []int }
type Sim struct{}

func (s *Sim) RunInto(f int, sc *Scratch) *Result { return &Result{vals: sc.vals} }

func helper(s *Sim, f int, sc *Scratch) *Result { return s.RunInto(f, sc) }
func deeper(s *Sim, sc *Scratch) *Result        { return helper(s, 0, sc) }
func identity(r *Result) *Result                { return r }
func fresh(s *Sim) *Result                      { return &Result{} }
`)
	helper := nodeNamed(t, g, "helper")
	if !hasIndex(helper.Summary.ScratchParams, 2) {
		t.Errorf("helper.ScratchParams = %v, want [2] (sc forwarded to RunInto)", helper.Summary.ScratchParams)
	}
	if !hasIndex(helper.Summary.ResultAliasParams, 2) {
		t.Errorf("helper.ResultAliasParams = %v, want [2] (returns the RunInto view)", helper.Summary.ResultAliasParams)
	}
	deeper := nodeNamed(t, g, "deeper")
	if !hasIndex(deeper.Summary.ScratchParams, 1) {
		t.Errorf("deeper.ScratchParams = %v, want [1] (transitive through helper)", deeper.Summary.ScratchParams)
	}
	identity := nodeNamed(t, g, "identity")
	if !hasIndex(identity.Summary.ResultAliasParams, 0) {
		t.Errorf("identity.ResultAliasParams = %v, want [0]", identity.Summary.ResultAliasParams)
	}
	fresh := nodeNamed(t, g, "fresh")
	if len(fresh.Summary.ResultAliasParams) != 0 {
		t.Errorf("fresh.ResultAliasParams = %v, want none", fresh.Summary.ResultAliasParams)
	}
}

func TestSummaryMapRangesAndBoxing(t *testing.T) {
	g, _ := graphFor(t, `package p
import "fmt"
func ranger(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
func boxer(n int) { fmt.Println(n) }
`)
	if got := len(nodeNamed(t, g, "ranger").Summary.MapRanges); got != 1 {
		t.Errorf("ranger map ranges = %d, want 1", got)
	}
	boxer := nodeNamed(t, g, "boxer")
	found := false
	for _, a := range boxer.Summary.Allocs {
		if a.What == "interface conversion" {
			found = true
		}
	}
	if !found {
		t.Errorf("boxer allocs = %v, want an interface conversion for the fmt argument", boxer.Summary.Allocs)
	}
}
