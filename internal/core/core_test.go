package core

import (
	"testing"

	"repro/internal/benchgen"
	"repro/internal/diagnosis"
	"repro/internal/partition"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/soc"
)

func baseOpts(scheme partition.Scheme) Options {
	return Options{Scheme: scheme, Groups: 4, Partitions: 4, Patterns: 64}
}

func TestNewCircuitBenchValidation(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	if _, err := NewCircuitBench(c, Options{}); err == nil {
		t.Error("empty options accepted")
	}
	o := baseOpts(partition.TwoStep{})
	o.Groups = 0
	if _, err := NewCircuitBench(c, o); err == nil {
		t.Error("zero groups accepted")
	}
	o = baseOpts(partition.TwoStep{})
	o.ScanOrder = []int{0, 1}
	if _, err := NewCircuitBench(c, o); err == nil {
		t.Error("short scan order accepted")
	}
}

func TestCircuitBenchStudy(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	b, err := NewCircuitBench(c, baseOpts(partition.TwoStep{}))
	if err != nil {
		t.Fatal(err)
	}
	faults := sim.SampleFaults(b.Faults(), 60, 21)
	study := b.Run(faults)
	if study.Diagnosed+study.Undetected != len(faults) {
		t.Errorf("diagnosed %d + undetected %d != %d", study.Diagnosed, study.Undetected, len(faults))
	}
	if study.Diagnosed == 0 {
		t.Fatal("no faults diagnosed")
	}
	// DR must be non-increasing in partition count.
	prev := study.ByPartition[0].Value()
	for k := 1; k < len(study.ByPartition); k++ {
		v := study.ByPartition[k].Value()
		if v > prev+1e-9 {
			t.Errorf("DR grew from %.3f to %.3f at k=%d", prev, v, k+1)
		}
		prev = v
	}
	// Full equals the last prefix.
	if study.Full.Value() != study.ByPartition[len(study.ByPartition)-1].Value() {
		t.Error("Full DR != last prefix DR")
	}
	// Pruning can only improve.
	if study.Pruned.Value() > study.Full.Value()+1e-9 {
		t.Errorf("pruned DR %.3f worse than full %.3f", study.Pruned.Value(), study.Full.Value())
	}
	if study.SchemeName != "two-step" {
		t.Errorf("scheme name %q", study.SchemeName)
	}
}

// TestCandidatesCoverActualCells: per-fault candidate sets must contain all
// failing cells under ideal compaction, via the public bench API.
func TestCandidatesCoverActualCells(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	o := baseOpts(partition.TwoStep{})
	o.Ideal = true
	b, err := NewCircuitBench(c, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sim.SampleFaults(b.Faults(), 40, 22) {
		fd := b.DiagnoseFault(f)
		if !fd.Detected {
			continue
		}
		for _, cell := range fd.Actual.Elems() {
			if !fd.Result.Candidates.Contains(cell) {
				t.Fatalf("fault %s: failing cell %d not a candidate", f.Describe(c), cell)
			}
		}
		if fd.CandidatesByPartition[o.Partitions-1] != fd.Result.Candidates.Len() {
			t.Error("per-partition counts inconsistent with final candidates")
		}
	}
}

func TestPartitionsToReachDR(t *testing.T) {
	drOf := func(cand, actual int) diagnosis.DR {
		var d diagnosis.DR
		d.Add(cand, actual)
		return d
	}
	study := Study{ByPartition: []diagnosis.DR{
		drOf(10, 2), // DR 4.0
		drOf(3, 2),  // DR 0.5
		drOf(2, 2),  // DR 0.0
	}}
	if k := study.PartitionsToReachDR(0.5); k != 2 {
		t.Errorf("k = %d, want 2", k)
	}
	if k := study.PartitionsToReachDR(0.0); k != 3 {
		t.Errorf("k = %d, want 3", k)
	}
	if k := study.PartitionsToReachDR(-1); k != -1 {
		t.Errorf("k = %d, want -1", k)
	}
}

func TestSOCBenchStudy(t *testing.T) {
	var cores []*soc.Core
	for _, name := range []string{"s298", "s953", "s526"} {
		cores = append(cores, &soc.Core{Name: name, Circuit: benchgen.MustGenerate(name)})
	}
	s, err := soc.New("mini", cores...)
	if err != nil {
		t.Fatal(err)
	}
	for _, chains := range []int{1, 4} {
		o := baseOpts(partition.TwoStep{})
		o.Chains = chains
		b, err := NewSOCBench(s, o)
		if err != nil {
			t.Fatal(err)
		}
		faults := sim.SampleFaults(b.CoreFaults(1), 30, 23)
		study := b.RunCore(1, faults)
		if study.Diagnosed == 0 {
			t.Fatalf("chains=%d: nothing diagnosed", chains)
		}
		if study.Full.Value() < 0 {
			t.Errorf("chains=%d: negative DR", chains)
		}
		// Candidates must include the faulty core's failing cells (ideal
		// check via clustering: candidates should be concentrated; at least
		// verify per-fault coverage under ideal compaction separately).
		_ = study
	}
}

func TestSOCBenchRejectsCustomOrder(t *testing.T) {
	var cores []*soc.Core
	cores = append(cores, &soc.Core{Name: "s298", Circuit: benchgen.MustGenerate("s298")})
	s, _ := soc.New("mini", cores...)
	o := baseOpts(partition.TwoStep{})
	o.ScanOrder = scan.RandomOrder(14, 1)
	if _, err := NewSOCBench(s, o); err == nil {
		t.Error("custom scan order accepted at SOC level")
	}
}

// TestParallelMatchesSerial: studies must be bit-identical regardless of
// worker count.
func TestParallelMatchesSerial(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	mk := func(workers int) *Study {
		o := baseOpts(partition.TwoStep{})
		o.Workers = workers
		b, err := NewCircuitBench(c, o)
		if err != nil {
			t.Fatal(err)
		}
		return b.Run(sim.SampleFaults(b.Faults(), 80, 31))
	}
	serial := mk(1)
	parallel := mk(8)
	if serial.Diagnosed != parallel.Diagnosed || serial.Undetected != parallel.Undetected {
		t.Fatal("fault counts differ between serial and parallel")
	}
	if serial.Full != parallel.Full || serial.Pruned != parallel.Pruned {
		t.Errorf("DR accumulators differ: %+v vs %+v", serial.Full, parallel.Full)
	}
	for k := range serial.ByPartition {
		if serial.ByPartition[k] != parallel.ByPartition[k] {
			t.Errorf("partition %d accumulators differ", k)
		}
	}
}

// TestSOCParallelMatchesSerial does the same at SOC scope.
func TestSOCParallelMatchesSerial(t *testing.T) {
	var cores []*soc.Core
	for _, name := range []string{"s298", "s953"} {
		cores = append(cores, &soc.Core{Name: name, Circuit: benchgen.MustGenerate(name)})
	}
	s, err := soc.New("duo", cores...)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) *Study {
		o := baseOpts(partition.TwoStep{})
		o.Workers = workers
		b, err := NewSOCBench(s, o)
		if err != nil {
			t.Fatal(err)
		}
		return b.RunCore(1, sim.SampleFaults(b.CoreFaults(1), 40, 32))
	}
	serial, parallel := mk(1), mk(6)
	if serial.Full != parallel.Full || serial.Pruned != parallel.Pruned {
		t.Error("SOC DR accumulators differ between serial and parallel")
	}
}

// TestRunObservedOrder: the observe callback sees faults in input order
// even with parallel execution.
func TestRunObservedOrder(t *testing.T) {
	c := benchgen.MustGenerate("s298")
	o := baseOpts(partition.RandomSelection{})
	o.Workers = 4
	b, err := NewCircuitBench(c, o)
	if err != nil {
		t.Fatal(err)
	}
	faults := sim.SampleFaults(b.Faults(), 30, 33)
	var seen []sim.Fault
	b.RunObserved(faults, func(fd *FaultDiagnosis) {
		seen = append(seen, fd.Fault)
	})
	if len(seen) != len(faults) {
		t.Fatalf("observed %d of %d", len(seen), len(faults))
	}
	for i := range seen {
		if seen[i] != faults[i] {
			t.Fatalf("order broken at %d", i)
		}
	}
}

// TestSuspectRegionLocalizesFaults closes the structural localisation loop:
// for single stuck-at faults, the fault site must lie in the intersection
// of the failing cells' fan-in cones, and that region must be a small
// fraction of the netlist.
func TestSuspectRegionLocalizesFaults(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	b, err := NewCircuitBench(c, baseOpts(partition.TwoStep{}))
	if err != nil {
		t.Fatal(err)
	}
	checked, regionSum := 0, 0
	for _, f := range sim.SampleFaults(b.Faults(), 80, 41) {
		fd := b.DiagnoseFault(f)
		if !fd.Detected {
			continue
		}
		checked++
		region := c.SuspectRegion(fd.Actual.Elems())
		site := f.Net
		found := false
		for _, id := range region {
			if id == site {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("fault %s: site not in suspect region of %d nets", f.Describe(c), len(region))
		}
		regionSum += len(region)
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	avg := float64(regionSum) / float64(checked)
	if avg > float64(c.NumNets())/2 {
		t.Errorf("average suspect region %.0f of %d nets; localisation ineffective", avg, c.NumNets())
	}
	t.Logf("average suspect region: %.1f of %d nets over %d faults", avg, c.NumNets(), checked)
}
