package core

import (
	"strings"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/soc"
)

func strictOpts() Options {
	return Options{
		Scheme: partition.TwoStep{}, Groups: 4, Partitions: 4, Patterns: 32,
		StrictDRC: true,
	}
}

// TestStrictDRCRejectsBadCircuit: a netlist with a floating net is refused
// at construction instead of silently corrupting every signature.
func TestStrictDRCRejectsBadCircuit(t *testing.T) {
	bad := circuit.Raw("floaty", []circuit.Net{
		{Name: "A", Op: logic.OpInput},
		{Name: "u", Op: logic.OpInvalid},
		{Name: "g", Op: logic.OpNot, Fanin: []circuit.NetID{1}},
		{Name: "d", Op: logic.OpDFF, Fanin: []circuit.NetID{2}},
	}, []circuit.NetID{0}, nil, []circuit.NetID{3})
	_, err := NewCircuitBench(bad, strictOpts())
	if err == nil {
		t.Fatal("StrictDRC accepted a circuit with a floating net")
	}
	if !strings.Contains(err.Error(), "drc:") {
		t.Errorf("error does not identify the DRC gate: %v", err)
	}
}

// TestStrictDRCRejectsMutatedCircuit: a Builder-validated circuit whose
// exported netlist was rewired afterwards carries stale memoized cones;
// the strict gate catches what simulation would never notice.
func TestStrictDRCRejectsMutatedCircuit(t *testing.T) {
	c, err := circuit.NewBuilder("mut").
		Input("A").Input("B").
		Gate("g1", logic.OpNot, "A").
		Gate("g2", logic.OpNot, "B").
		DFF("d1", "g1").DFF("d2", "g2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := c.NetByName("g2")
	a, _ := c.NetByName("A")
	c.Nets[g2].Fanin[0] = a
	if _, err := NewCircuitBench(c, strictOpts()); err == nil {
		t.Fatal("StrictDRC accepted a circuit mutated after construction")
	}
}

// TestStrictDRCAcceptsCleanInputs: the gate is invisible on well-formed
// designs, at circuit and SOC scope.
func TestStrictDRCAcceptsCleanInputs(t *testing.T) {
	b, err := NewCircuitBench(benchgen.MustGenerate("s298"), strictOpts())
	if err != nil {
		t.Fatalf("StrictDRC rejected a bundled bench: %v", err)
	}
	if b == nil || b.Engine() == nil {
		t.Fatal("bench not built")
	}

	s, err := soc.New("mini",
		&soc.Core{Name: "a", Circuit: benchgen.MustGenerate("s27")},
		&soc.Core{Name: "b", Circuit: benchgen.MustGenerate("s298")})
	if err != nil {
		t.Fatal(err)
	}
	opts := strictOpts()
	opts.Chains = 2
	if _, err := NewSOCBench(s, opts); err != nil {
		t.Fatalf("StrictDRC rejected a clean SOC: %v", err)
	}
}

// TestStrictDRCRejectsBadSOC: a core-level violation fails SOC bench
// construction and the error names the core.
func TestStrictDRCRejectsBadSOC(t *testing.T) {
	bad := circuit.Raw("floaty", []circuit.Net{
		{Name: "A", Op: logic.OpInput},
		{Name: "u", Op: logic.OpInvalid},
		{Name: "d", Op: logic.OpDFF, Fanin: []circuit.NetID{1}},
	}, []circuit.NetID{0}, nil, []circuit.NetID{2})
	s, err := soc.New("badsoc",
		&soc.Core{Name: "rotten", Circuit: bad},
		&soc.Core{Name: "fine", Circuit: benchgen.MustGenerate("s27")})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewSOCBench(s, strictOpts())
	if err == nil {
		t.Fatal("StrictDRC accepted an SOC with a rotten core")
	}
	if !strings.Contains(err.Error(), "rotten") {
		t.Errorf("error does not name the offending core: %v", err)
	}
}
