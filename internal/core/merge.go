package core

import "repro/internal/diagnosis"

// MergeObserved aggregates per-fault diagnoses produced elsewhere — by
// shard workers, by other processes, by any path that yields the same
// FaultDiagnosis values RunObserved would have — into a Study, in slot
// order. It is the merge half of the coordinator/worker split
// (internal/shard): each result slot corresponds to one fault of the
// global fault list, nil slots mark faults whose shard failed or was
// cancelled.
//
// Unlike the sweep aggregator, which keeps only the contiguous prefix
// (a cancelled sweep means "ran out of time after fault n"), the merge
// accepts gaps: a dead worker punches a hole in the middle of the fault
// list, and every completed shard around it is still sound and worth
// reporting. Completeness records Observed (non-nil slots) against
// Scheduled so callers can see exactly how degraded the study is.
//
// Aggregation order is slot-major: Study totals and the observe
// callback see fault i before fault j whenever i < j, regardless of
// which shard, worker, or process produced them — this is what makes a
// multi-worker run's output bit-identical to the single-process sweep
// when no slot is nil.
//
// Every non-nil diagnosis must be complete (CandidatesByPartition
// covering all of o.Partitions, as RunObserved produces); partially
// collected diagnoses should be dropped to nil by the caller, the way
// a shard failure drops its whole slice.
func MergeObserved(o Options, schemeName string, results []*FaultDiagnosis, observe func(*FaultDiagnosis)) *Study {
	o = o.withDefaults()
	study := newStudy(o, schemeName)
	observed := 0
	for _, fd := range results {
		if fd == nil {
			continue
		}
		observed++
		if observe != nil {
			observe(fd)
		}
		study.add(fd)
	}
	study.Completeness = diagnosis.Completeness{Observed: observed, Scheduled: len(results)}
	return study
}
