package core

import (
	"testing"

	"repro/internal/benchgen"
	"repro/internal/bist"
	"repro/internal/noise"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/soc"
)

// noisyOpts is the acceptance configuration: heavy intermittence (the fault
// manifests on only 30% of patterns per execution), a 2% verdict-flip rate,
// 2% session aborts, 8 retries per session and a vote threshold of 2.
func noisyOpts() Options {
	return Options{
		Scheme:        partition.TwoStep{},
		Groups:        4,
		Partitions:    8,
		Patterns:      200,
		Noise:         noise.Model{Intermittent: 0.3, Flip: 0.02, Abort: 0.02, Seed: 7},
		Retry:         bist.RetryPolicy{MaxRetries: 8},
		VoteThreshold: 2,
	}
}

// TestRobustDiagnosisSoundUnderNoise is the headline acceptance test: with
// p=0.3 intermittence, 2% flips and 2% aborts, robust diagnosis never
// prunes a truly failing cell across a seeded 200-fault sample on s953 and
// s1423, while the hard-intersection baseline over the same noisy verdicts
// demonstrably does.
func TestRobustDiagnosisSoundUnderNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("noise acceptance sweep is slow")
	}
	for _, name := range []string{"s953", "s1423"} {
		t.Run(name, func(t *testing.T) {
			c := benchgen.MustGenerate(name)
			b, err := NewCircuitBench(c, noisyOpts())
			if err != nil {
				t.Fatal(err)
			}
			faults := sim.SampleFaults(b.Faults(), 200, 1)
			study := b.Run(faults)
			if study.Diagnosed < 100 {
				t.Fatalf("only %d faults diagnosed; sample too weak", study.Diagnosed)
			}
			if study.Misses != 0 {
				t.Errorf("robust diagnosis pruned truly failing cells on %d faults", study.Misses)
			}
			if study.BaselineMisses == 0 {
				t.Error("hard-intersection baseline survived the noise; test exerts no pressure")
			}
			if study.Reliability.Unknown == 0 || study.Reliability.Aborted == 0 {
				t.Errorf("noise left no trace in reliability: %s", &study.Reliability)
			}
			wantBudget := study.Reliability.Sessions * 9 // 1 + 8 retries
			if study.Reliability.Executions != wantBudget {
				t.Errorf("executions %d, want %d", study.Reliability.Executions, wantBudget)
			}
			t.Logf("%s: diagnosed=%d baselineMisses=%d DR(robust)=%.3f DR(baseline)=%.3f reliability: %s",
				name, study.Diagnosed, study.BaselineMisses,
				study.Pruned.Value(), study.BaselineFull.Value(), &study.Reliability)
		})
	}
}

// TestDisabledNoiseReproducesSeedBitForBit: p=1, q=0, no aborts must take
// the exact deterministic path — per-fault candidate and pruned sets equal
// the plain configuration's, element for element, and no noise fields are
// populated.
func TestDisabledNoiseReproducesSeedBitForBit(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	plain := Options{Scheme: partition.TwoStep{}, Groups: 4, Partitions: 4, Patterns: 64}
	declared := plain
	declared.Noise = noise.Model{Intermittent: 1, Seed: 42} // p=1: never drops a pattern
	declared.Retry = bist.RetryPolicy{MaxRetries: 3}        // irrelevant without noise
	bp, err := NewCircuitBench(c, plain)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := NewCircuitBench(c, declared)
	if err != nil {
		t.Fatal(err)
	}
	faults := sim.SampleFaults(bp.Faults(), 80, 13)
	for _, f := range faults {
		want := bp.DiagnoseFault(f)
		got := bd.DiagnoseFault(f)
		if want.Detected != got.Detected {
			t.Fatalf("fault %v: detection differs", f)
		}
		if !want.Detected {
			continue
		}
		if !got.Result.Candidates.Equal(want.Result.Candidates) ||
			!got.Result.Pruned.Equal(want.Result.Pruned) ||
			!got.Result.Confirmed.Equal(want.Result.Confirmed) {
			t.Fatalf("fault %v: disabled noise changed the diagnosis", f)
		}
		if got.Baseline != nil || got.Reliability != nil {
			t.Fatalf("fault %v: perfect tester populated noise fields", f)
		}
	}
}

// TestNoisyStudyWorkerIndependence: per-fault noise substreams are keyed on
// fault identity, so the study must not depend on the worker count.
func TestNoisyStudyWorkerIndependence(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	o := noisyOpts()
	o.Patterns = 64
	o.Retry.MaxRetries = 2
	run := func(workers int) *Study {
		o := o
		o.Workers = workers
		b, err := NewCircuitBench(c, o)
		if err != nil {
			t.Fatal(err)
		}
		return b.Run(sim.SampleFaults(b.Faults(), 40, 9))
	}
	serial, parallel := run(1), run(4)
	if serial.Diagnosed != parallel.Diagnosed || serial.Misses != parallel.Misses ||
		serial.BaselineMisses != parallel.BaselineMisses ||
		serial.Reliability != parallel.Reliability ||
		serial.Pruned != parallel.Pruned || serial.BaselineFull != parallel.BaselineFull {
		t.Errorf("study depends on worker count:\n  serial:   %+v\n  parallel: %+v", serial, parallel)
	}
}

// TestOptionsValidateNoise: malformed noise options are rejected up front.
func TestOptionsValidateNoise(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	base := Options{Scheme: partition.TwoStep{}, Groups: 4, Partitions: 4, Patterns: 32}
	bad := []func(*Options){
		func(o *Options) { o.Noise.Flip = 1.5 },
		func(o *Options) { o.Noise.Intermittent = -0.2 },
		func(o *Options) { o.Retry.MaxRetries = -1 },
		func(o *Options) { o.VoteThreshold = -1 },
		func(o *Options) { o.VoteThreshold = 5 }, // > Partitions
	}
	for i, mutate := range bad {
		o := base
		mutate(&o)
		if _, err := NewCircuitBench(c, o); err == nil {
			t.Errorf("case %d: invalid noise options accepted", i)
		}
	}
	good := base
	good.Noise = noise.Model{Intermittent: 0.5, Flip: 0.01}
	good.Retry.MaxRetries = 2
	good.VoteThreshold = 4
	if _, err := NewCircuitBench(c, good); err != nil {
		t.Errorf("valid noise options rejected: %v", err)
	}
}

// TestSOCBenchNoise: the SOC flow shares the same robust path; a noisy run
// on a small SOC stays sound and records reliability.
func TestSOCBenchNoise(t *testing.T) {
	var cores []*soc.Core
	for _, name := range []string{"s298", "s953"} {
		cores = append(cores, &soc.Core{Name: name, Circuit: benchgen.MustGenerate(name)})
	}
	s, err := soc.New("duo", cores...)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{
		Scheme:        partition.TwoStep{},
		Groups:        4,
		Partitions:    6,
		Patterns:      96,
		Noise:         noise.Model{Intermittent: 0.4, Flip: 0.02, Abort: 0.02, Seed: 3},
		Retry:         bist.RetryPolicy{MaxRetries: 8},
		VoteThreshold: 2,
	}
	b, err := NewSOCBench(s, o)
	if err != nil {
		t.Fatal(err)
	}
	faults := sim.SampleFaults(b.CoreFaults(0), 30, 5)
	study := b.RunCore(0, faults)
	if study.Diagnosed == 0 {
		t.Fatal("no faults diagnosed")
	}
	if study.Misses != 0 {
		t.Errorf("SOC robust diagnosis missed cells on %d faults", study.Misses)
	}
	if study.Reliability.Executions == 0 {
		t.Error("SOC noisy run recorded no executions")
	}
}
