package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/bist"
	"repro/internal/bitset"
	"repro/internal/diagnosis"
	"repro/internal/noise"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/soc"
)

// equivNoisyOpts layers the unreliable-tester knobs over baseOpts so the
// equivalence tests cover the tri-state verdict path too.
func equivNoisyOpts(scheme partition.Scheme) Options {
	o := baseOpts(scheme)
	o.Noise = noise.Model{Intermittent: 0.5, Flip: 0.02, Abort: 0.02, Seed: 7}
	o.Retry = bist.RetryPolicy{MaxRetries: 4}
	o.VoteThreshold = 2
	return o
}

func setsEqual(a, b *bitset.Set) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Equal(b)
}

func resultsEqual(a, b *diagnosis.Result) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || (setsEqual(a.Candidates, b.Candidates) &&
		setsEqual(a.Pruned, b.Pruned) && setsEqual(a.Confirmed, b.Confirmed))
}

// requireSameDiagnosis asserts that two FaultDiagnosis values agree on every
// field a caller can observe.
func requireSameDiagnosis(t *testing.T, label string, got, want *FaultDiagnosis) {
	t.Helper()
	if got.Fault != want.Fault {
		t.Fatalf("%s: fault %+v, want %+v", label, got.Fault, want.Fault)
	}
	if got.Detected != want.Detected {
		t.Fatalf("%s: detected %t, want %t", label, got.Detected, want.Detected)
	}
	if !setsEqual(got.Actual, want.Actual) {
		t.Fatalf("%s: actual cells %v, want %v", label, got.Actual.Elems(), want.Actual.Elems())
	}
	if !resultsEqual(got.Result, want.Result) {
		t.Fatalf("%s: result differs: got %+v, want %+v", label, got.Result, want.Result)
	}
	if !resultsEqual(got.Baseline, want.Baseline) {
		t.Fatalf("%s: baseline differs: got %+v, want %+v", label, got.Baseline, want.Baseline)
	}
	if !reflect.DeepEqual(got.Reliability, want.Reliability) {
		t.Fatalf("%s: reliability %+v, want %+v", label, got.Reliability, want.Reliability)
	}
	if !reflect.DeepEqual(got.CandidatesByPartition, want.CandidatesByPartition) {
		t.Fatalf("%s: candidates by partition %v, want %v",
			label, got.CandidatesByPartition, want.CandidatesByPartition)
	}
}

// TestPooledRunMatchesReference pins the tentpole invariant: the pooled,
// batched Run path must reproduce the reference per-fault DiagnoseFault
// path bit-for-bit, across schemes and with the tester noise model both off
// and on.
func TestPooledRunMatchesReference(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	schemes := []partition.Scheme{partition.Interval{}, partition.RandomSelection{}, partition.TwoStep{}}
	for _, scheme := range schemes {
		for _, noisy := range []bool{false, true} {
			o := baseOpts(scheme)
			if noisy {
				o = equivNoisyOpts(scheme)
			}
			o.Workers = 4
			t.Run(fmt.Sprintf("%s/noisy=%t", scheme.Name(), noisy), func(t *testing.T) {
				b, err := NewCircuitBench(c, o)
				if err != nil {
					t.Fatal(err)
				}
				faults := sim.SampleFaults(b.Faults(), 40, 11)
				var pooled []*FaultDiagnosis
				b.RunObserved(faults, func(fd *FaultDiagnosis) { pooled = append(pooled, fd) })
				if len(pooled) != len(faults) {
					t.Fatalf("observed %d diagnoses for %d faults", len(pooled), len(faults))
				}
				for i, f := range faults {
					ref := b.DiagnoseFault(f)
					requireSameDiagnosis(t, fmt.Sprintf("fault %d (%+v)", i, f), pooled[i], ref)
				}
			})
		}
	}
}

// TestStudyDeterministicAcrossWorkers asserts identical Studies — including
// Reliability and the robust-mode outputs — for every worker count.
func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	for _, noisy := range []bool{false, true} {
		o := baseOpts(partition.TwoStep{})
		if noisy {
			o = equivNoisyOpts(partition.TwoStep{})
		}
		var want *Study
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			o.Workers = workers
			b, err := NewCircuitBench(c, o)
			if err != nil {
				t.Fatal(err)
			}
			faults := sim.SampleFaults(b.Faults(), 60, 5)
			study := b.Run(faults)
			if want == nil {
				want = study
				continue
			}
			if !reflect.DeepEqual(study, want) {
				t.Errorf("noisy=%t workers=%d: study %+v differs from workers=1 study %+v",
					noisy, workers, study, want)
			}
		}
	}
}

// TestCacheHitMatchesCacheMiss asserts that a bench built from cached
// artifacts behaves identically to one that built everything fresh.
func TestCacheHitMatchesCacheMiss(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	cache := pipeline.NewCache()
	o := equivNoisyOpts(partition.TwoStep{})
	o.Cache = cache

	warm, err := NewCircuitBench(c, o) // cold build populates the cache
	if err != nil {
		t.Fatal(err)
	}
	hit, err := NewCircuitBench(c, o) // same key: artifact-cache hit
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("cache stats %+v, want one miss then one hit", s)
	}
	o.Cache = nil
	fresh, err := NewCircuitBench(c, o) // no cache: builds from scratch
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(hit.GoldenSignatures(), fresh.GoldenSignatures()) {
		t.Error("golden signatures differ between cache-hit and fresh builds")
	}
	faults := sim.SampleFaults(fresh.Faults(), 40, 3)
	want := fresh.Run(faults)
	for label, b := range map[string]*CircuitBench{"warm": warm, "hit": hit} {
		if got := b.Run(faults); !reflect.DeepEqual(got, want) {
			t.Errorf("%s bench study %+v differs from fresh build %+v", label, got, want)
		}
	}
}

// TestWarmStartMatchesColdStart pins the persistence tier's correctness
// contract: a second process (fresh memory cache, same CacheDir) must
// produce bit-for-bit identical diagnoses while rebuilding nothing — the
// fault-free simulation layer, cone snapshot, and batch plans all come
// off disk.
func TestWarmStartMatchesColdStart(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	schemes := []partition.Scheme{partition.Interval{}, partition.TwoStep{}}
	for _, scheme := range schemes {
		for _, noisy := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/noisy=%t", scheme.Name(), noisy), func(t *testing.T) {
				dir := t.TempDir()
				o := baseOpts(scheme)
				if noisy {
					o = equivNoisyOpts(scheme)
				}
				o.Workers = 4
				o.CacheDir = dir

				cold, err := NewCircuitBench(c, o)
				if err != nil {
					t.Fatal(err)
				}
				faults := sim.SampleFaults(cold.Faults(), 40, 3)
				want := cold.Run(faults)

				// Second process: a new cache over the same directory.
				o.Cache = pipeline.NewCache()
				warm, err := NewCircuitBench(c, o)
				if err != nil {
					t.Fatal(err)
				}
				got := warm.Run(faults)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("warm-start study %+v differs from cold-start study %+v", got, want)
				}
				if !reflect.DeepEqual(warm.GoldenSignatures(), cold.GoldenSignatures()) {
					t.Error("warm-start golden signatures differ from cold start")
				}
				s := o.Cache.Stats()
				if s.DiskHits == 0 {
					t.Errorf("warm process never hit the disk tier: stats %+v", s)
				}
				if s.DiskWrites != 0 {
					t.Errorf("warm process rebuilt %d artifacts that were on disk: stats %+v", s.DiskWrites, s)
				}
			})
		}
	}
}

// TestSOCWarmStartMatchesColdStart is the SOC-scope warm-start check: the
// persisted segment map and per-core layers must reproduce RunCore
// exactly, with zero core re-simulation.
func TestSOCWarmStartMatchesColdStart(t *testing.T) {
	var cores []*soc.Core
	for _, name := range []string{"s298", "s953"} {
		cores = append(cores, &soc.Core{Name: name, Circuit: benchgen.MustGenerate(name)})
	}
	s, err := soc.New("warm", cores...)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	o := equivNoisyOpts(partition.TwoStep{})
	o.Workers = 4
	o.CacheDir = dir

	cold, err := NewSOCBench(s, o)
	if err != nil {
		t.Fatal(err)
	}
	const core = 1
	faults := sim.SampleFaults(cold.CoreFaults(core), 30, 17)
	want := cold.RunCore(core, faults)

	o.Cache = pipeline.NewCache()
	warm, err := NewSOCBench(s, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.RunCore(core, faults); !reflect.DeepEqual(got, want) {
		t.Errorf("warm-start SOC study %+v differs from cold start %+v", got, want)
	}
	st := o.Cache.Stats()
	if st.DiskHits == 0 || st.DiskWrites != 0 {
		t.Errorf("warm SOC process stats %+v: want disk hits and zero rebuilds", st)
	}
}

// TestSOCPooledMatchesReference is the SOC-level counterpart of
// TestPooledRunMatchesReference: RunCore's pooled path against the
// per-fault DiagnoseFault path, with and without noise.
func TestSOCPooledMatchesReference(t *testing.T) {
	var cores []*soc.Core
	for _, name := range []string{"s298", "s953", "s526"} {
		cores = append(cores, &soc.Core{Name: name, Circuit: benchgen.MustGenerate(name)})
	}
	s, err := soc.New("mini", cores...)
	if err != nil {
		t.Fatal(err)
	}
	for _, noisy := range []bool{false, true} {
		o := baseOpts(partition.TwoStep{})
		if noisy {
			o = equivNoisyOpts(partition.TwoStep{})
		}
		o.Workers = 4
		b, err := NewSOCBench(s, o)
		if err != nil {
			t.Fatal(err)
		}
		const core = 1
		faults := sim.SampleFaults(b.CoreFaults(core), 30, 17)

		// RunCore has no observe hook; aggregate both paths into Studies and
		// also spot-check per-fault equality through the reference API.
		pooled := b.RunCore(core, faults)
		ref := newStudy(o, o.Scheme.Name())
		for i, f := range faults {
			fd := b.DiagnoseFault(core, f)
			ref.add(fd)
			again := b.DiagnoseFault(core, f)
			requireSameDiagnosis(t, fmt.Sprintf("noisy=%t fault %d", noisy, i), again, fd)
		}
		ref.Completeness = diagnosis.Completeness{Observed: len(faults), Scheduled: len(faults)}
		// The per-fault reference path never compiles a batch plan, so the
		// schedule-shape stats are out of scope for this equivalence check.
		ref.PlanBatches, ref.PlanFill = pooled.PlanBatches, pooled.PlanFill
		if !reflect.DeepEqual(pooled, ref) {
			t.Errorf("noisy=%t: pooled SOC study %+v differs from reference %+v", noisy, pooled, ref)
		}

		o.Workers = 1
		b1, err := NewSOCBench(s, o)
		if err != nil {
			t.Fatal(err)
		}
		if serial := b1.RunCore(core, faults); !reflect.DeepEqual(serial, pooled) {
			t.Errorf("noisy=%t: serial SOC study differs from pooled", noisy)
		}
	}
}
