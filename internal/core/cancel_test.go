package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/benchgen"
	"repro/internal/partition"
	"repro/internal/sim"
)

// countdownCtx is a deterministic cancellable context: Err returns nil
// for the first allotted calls and context.Canceled from then on, and
// Done is non-nil (which is what marks the context cancellable to
// sweepOptions and sim.RunBatchContext). Counting Err polls instead of
// arming a wall-clock deadline makes every cancellation point in these
// tests reproducible; calls counts total polls so a test can measure a
// full run and then budget a fraction of it — the deterministic analogue
// of "deadline at 50% of the runtime".
type countdownCtx struct {
	mu    sync.Mutex
	left  int
	calls int
	done  chan struct{}
}

func newCountdown(allow int) *countdownCtx {
	return &countdownCtx{left: allow, done: make(chan struct{})}
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(any) any               { return nil }

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// runFull collects a full sweep under a cancellable-but-never-cancelled
// context, so the partial runs compare against the same batch packing.
func runFull(t *testing.T, b *CircuitBench, faults []sim.Fault) (*Study, []*FaultDiagnosis, int) {
	t.Helper()
	ctx := newCountdown(1 << 30)
	var fds []*FaultDiagnosis
	study, err := b.RunObservedContext(ctx, faults, func(fd *FaultDiagnosis) { fds = append(fds, fd) })
	if err != nil {
		t.Fatalf("uncancelled sweep returned %v", err)
	}
	if !study.Completeness.Complete() || study.Completeness.Scheduled != len(faults) {
		t.Fatalf("uncancelled sweep completeness %+v", study.Completeness)
	}
	return study, fds, ctx.calls
}

// TestCancelSweepPartialIsPrefix sweeps the cancellation point across a
// run: wherever the countdown lands — before the first batch, between
// kernel blocks inside one, or past the end — the partial study must
// aggregate a bit-for-bit prefix of the full run's per-fault diagnoses
// and label itself with how far it got.
func TestCancelSweepPartialIsPrefix(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	o := baseOpts(partition.TwoStep{})
	o.Workers = 1
	b, err := NewCircuitBench(c, o)
	if err != nil {
		t.Fatal(err)
	}
	faults := sim.SampleFaults(b.Faults(), 40, 9)
	fullStudy, full, fullCalls := runFull(t, b, faults)

	// The cancellable full run packs batches in scan order rather than
	// cone-aware, but must still aggregate to the identical study.
	if want := b.Run(faults); !reflect.DeepEqual(fullStudy, want) {
		t.Fatalf("cancellable full sweep %+v differs from context-free run %+v", fullStudy, want)
	}

	partials := 0
	for trip := 1; trip < fullCalls; trip = trip*2 + 1 {
		ctx := newCountdown(trip)
		var got []*FaultDiagnosis
		study, err := b.RunObservedContext(ctx, faults, func(fd *FaultDiagnosis) { got = append(got, fd) })
		n := study.Completeness.Observed
		if err == nil {
			t.Fatalf("trip=%d: cancelled sweep reported no error", trip)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trip=%d: err = %v, want context.Canceled", trip, err)
		}
		if study.Completeness.Scheduled != len(faults) || n != len(got) {
			t.Fatalf("trip=%d: completeness %+v for %d observed diagnoses",
				trip, study.Completeness, len(got))
		}
		if n > 0 && !reflect.DeepEqual(got, full[:n]) {
			t.Fatalf("trip=%d: partial diagnoses are not a prefix of the full run (observed %d)", trip, n)
		}
		if n > 0 && n < len(faults) {
			partials++
		}
	}
	if partials == 0 {
		t.Fatal("no cancellation point produced a strictly partial study; the sweep never cancelled mid-run")
	}
}

// TestCancelSweepHalfDeadlineS13207 is the acceptance scenario on the
// paper's large benchmark: cancel a s13207 sweep halfway through (by
// context-poll budget, the deterministic stand-in for a 50% wall-clock
// deadline) and require a sound partial study — a strict prefix, correct
// completeness metadata, and no stuck goroutines.
func TestCancelSweepHalfDeadlineS13207(t *testing.T) {
	if testing.Short() {
		t.Skip("s13207 sweep in -short mode")
	}
	c := benchgen.MustGenerate("s13207")
	o := baseOpts(partition.TwoStep{})
	o.Workers = 1
	// Cancellation granularity is one batch: at the default 256-lane cap
	// all 12 sampled faults pack into a single batch and the only partial
	// study possible is the empty one. Pin a small cap so the sweep spans
	// several batches and a mid-run cancel can land between them.
	o.Lanes = 4
	b, err := NewCircuitBench(c, o)
	if err != nil {
		t.Fatal(err)
	}
	faults := sim.SampleFaults(b.Faults(), 12, 3)
	_, full, fullCalls := runFull(t, b, faults)

	before := runtime.NumGoroutine()
	ctx := newCountdown(fullCalls / 2)
	var got []*FaultDiagnosis
	study, err := b.RunObservedContext(ctx, faults, func(fd *FaultDiagnosis) { got = append(got, fd) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	n := study.Completeness.Observed
	if n <= 0 || n >= len(faults) {
		t.Fatalf("half-deadline sweep observed %d of %d faults, want a strict partial", n, len(faults))
	}
	if study.Completeness.Scheduled != len(faults) {
		t.Fatalf("completeness %+v, want %d scheduled", study.Completeness, len(faults))
	}
	if !reflect.DeepEqual(got, full[:n]) {
		t.Fatal("partial diagnoses are not a bit-for-bit prefix of the full run")
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines fails the test if the goroutine count has not
// returned to its pre-run level shortly after a cancelled sweep — i.e.
// the executor leaked workers.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := 100
	for ; deadline > 0; deadline-- {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before cancelled sweep, %d after", before, runtime.NumGoroutine())
}

// TestCancelSweepParallelNoLeak cancels a parallel sweep and requires
// the pool to drain completely: the returned study is still a contiguous
// prefix and every worker goroutine exits.
func TestCancelSweepParallelNoLeak(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	o := baseOpts(partition.TwoStep{})
	o.Workers = 8
	b, err := NewCircuitBench(c, o)
	if err != nil {
		t.Fatal(err)
	}
	faults := sim.SampleFaults(b.Faults(), 60, 5)
	_, full, fullCalls := runFull(t, b, faults)

	before := runtime.NumGoroutine()
	ctx := newCountdown(fullCalls / 3)
	var got []*FaultDiagnosis
	study, err := b.RunObservedContext(ctx, faults, func(fd *FaultDiagnosis) { got = append(got, fd) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	n := study.Completeness.Observed
	if n != len(got) || (n > 0 && !reflect.DeepEqual(got, full[:n])) {
		t.Fatalf("parallel partial study is not a prefix (observed %d)", n)
	}
	waitForGoroutines(t, before)
}

// TestCancelDiagnosePartialSuperset pins degraded-mode soundness fault
// by fault: a diagnosis cut off after k partitions must report a
// superset of the full run's candidates (partition intersection is
// monotone), completeness metadata saying exactly k, and a
// CandidatesByPartition curve that is a prefix of the full one.
func TestCancelDiagnosePartialSuperset(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	o := baseOpts(partition.TwoStep{})
	b, err := NewCircuitBench(c, o)
	if err != nil {
		t.Fatal(err)
	}
	faults := sim.SampleFaults(b.Faults(), 15, 23)
	for _, f := range faults {
		full := b.DiagnoseFault(f)
		for k := 0; k <= o.Partitions; k++ {
			// VerdictsUpTo polls ctx once per partition; allowing k polls
			// cancels it after exactly k observed partitions.
			ctx := newCountdown(k)
			fd, err := b.DiagnoseFaultContext(ctx, f)
			if !full.Detected {
				if fd.Detected {
					t.Fatalf("%s: partial run detected a fault the full run missed", f.Describe(c))
				}
				continue
			}
			label := f.Describe(c)
			if k < o.Partitions {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s k=%d: err = %v, want context.Canceled", label, k, err)
				}
			} else if err != nil {
				t.Fatalf("%s k=%d: err = %v for a fully observed run", label, k, err)
			}
			if fd.Completeness.Observed != k || fd.Completeness.Scheduled != o.Partitions {
				t.Fatalf("%s k=%d: completeness %+v", label, k, fd.Completeness)
			}
			if !fd.Result.Candidates.SupersetOf(full.Result.Candidates) {
				t.Fatalf("%s k=%d: partial candidates %v are not a superset of full %v",
					label, k, fd.Result.Candidates.Elems(), full.Result.Candidates.Elems())
			}
			if got, want := fd.CandidatesByPartition, full.CandidatesByPartition[:k]; !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("%s k=%d: candidate curve %v, want prefix %v", label, k, got, want)
			}
			if k == o.Partitions {
				if !fd.Result.Candidates.Equal(full.Result.Candidates) {
					t.Fatalf("%s: fully observed partial run differs from DiagnoseFault", label)
				}
				if !fd.Completeness.Complete() {
					t.Fatalf("%s: fully observed run not marked complete: %+v", label, fd.Completeness)
				}
			}
		}
	}
}

// TestCancelDiagnoseZeroPartitionsIsNoInformation: cancelled at entry,
// the degraded diagnosis must fall back to the sound no-information
// answer — every cell a candidate — rather than an empty set.
func TestCancelDiagnoseZeroPartitionsIsNoInformation(t *testing.T) {
	c := benchgen.MustGenerate("s953")
	b, err := NewCircuitBench(c, baseOpts(partition.TwoStep{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sim.SampleFaults(b.Faults(), 10, 31) {
		full := b.DiagnoseFault(f)
		if !full.Detected {
			continue
		}
		fd, err := b.DiagnoseFaultContext(newCountdown(0), f)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if fd.Completeness.Observed != 0 {
			t.Fatalf("completeness %+v, want zero observed", fd.Completeness)
		}
		if !fd.Result.Candidates.SupersetOf(full.Actual) {
			t.Fatal("zero-partition candidates exclude actually failing cells")
		}
	}
}
