// Package core orchestrates the paper's full diagnosis flow: pattern
// generation, fault simulation, multi-session signature collection under a
// partitioning scheme, candidate derivation, and the diagnostic-resolution
// (DR) metric — for a single full-scan circuit or for a core-based SOC
// tested through a TestRail. It is the layer the examples, command-line
// tools, and experiment drivers build on.
//
// The heavy lifting lives in internal/pipeline: a bench borrows an
// immutable artifact set (patterns, fault-free responses, partitions,
// golden signatures) — deduplicated by Options.Cache when several benches
// share a content key — and drives the fault loop over a batched worker
// pool with per-worker reusable scratch buffers, so the steady-state loop
// stays allocation-free.
package core

import (
	"context"
	"fmt"

	"repro/internal/bist"
	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/diagnosis"
	"repro/internal/drc"
	"repro/internal/lfsr"
	"repro/internal/noise"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/soc"
)

// Options configures a diagnosis study.
type Options struct {
	// Scheme partitions the scan chains; required.
	Scheme partition.Scheme
	// Groups per partition (the paper's b).
	Groups int
	// Partitions to apply (each adds Groups BIST sessions).
	Partitions int
	// Patterns per BIST session.
	Patterns int
	// PRPGSeed seeds the pattern generator; zero selects 0xACE1.
	PRPGSeed uint64
	// PRPGPoly is the pattern-generator polynomial; zero selects the
	// paper's degree-16 primitive polynomial.
	PRPGPoly lfsr.Poly
	// MISRPoly is the compaction polynomial; zero selects degree 16.
	MISRPoly lfsr.Poly
	// Ideal bypasses MISR compaction (no aliasing); for ablations.
	Ideal bool
	// Chains splits the scan cells into this many balanced chains; zero
	// selects a single chain.
	Chains int
	// ScanOrder optionally overrides the natural (structural) scan order;
	// must be a permutation of the cell indices.
	ScanOrder []int
	// Workers bounds the goroutines used to diagnose faults concurrently.
	// Zero selects GOMAXPROCS; 1 forces serial execution. Results are
	// identical regardless of the worker count: each fault's diagnosis is
	// independent and aggregation preserves fault order.
	Workers int
	// Noise models an unreliable tester (intermittent fault activation,
	// verdict flips, session aborts). The zero value is a perfect tester
	// and keeps the exact deterministic code path. Each fault draws an
	// independent, reproducible noise substream derived from Noise.Seed
	// and the fault's identity, so results do not depend on diagnosis
	// order or worker count.
	Noise noise.Model
	// Retry schedules repeated executions of every session under noise;
	// completed executions vote on the tri-state verdict. Ignored for a
	// perfect tester.
	Retry bist.RetryPolicy
	// VoteThreshold K makes pruning demand corroboration: a cell is pruned
	// only when its group passed in at least K partitions (Unknown
	// verdicts never prune). 0 or 1 is the paper's hard intersection.
	VoteThreshold int
	// Cache deduplicates build artifacts (pattern blocks, fault-free
	// responses, partitions, golden signatures) across benches that share
	// a content key. Nil builds fresh artifacts per bench. Runtime knobs —
	// Workers, Noise, Retry, VoteThreshold, and the cache itself — are not
	// part of the key, so sweeps over them reuse one artifact set.
	Cache *pipeline.ArtifactCache
	// CacheDir attaches a persistent artifact tier rooted at this
	// directory (see pipeline.ArtifactCache.AttachDir): artifacts built by
	// one process are decoded instead of rebuilt by the next — the
	// warm-start path. When set with a nil Cache, a fresh cache is created
	// to host the tier. Empty means in-memory caching only.
	CacheDir string
	// CacheBudget bounds Cache with a cost-accounted LRU budget (bytes
	// and/or entries); the zero value leaves the cache unbounded. Applied
	// at bench construction via Cache.SetBudget, so the first bench of a
	// sweep installs the limit for every later borrower. Ignored without
	// a Cache.
	CacheBudget pipeline.Budget
	// Lanes caps the faults packed per simulation batch, 1..256. Caps
	// above 64 engage the wide-word kernel: faults are organised into
	// 2 or 4 word-parallel planes with per-lane cone masking, trading a
	// coarser cancellation granularity for higher sweep throughput. Zero
	// selects the engine default (256).
	Lanes int
	// StrictDRC runs the static design-rule checker (internal/drc) on the
	// netlist — and, at SOC scope, on every core and the TAM
	// configuration — before any simulation artifact is built, and fails
	// construction on the first violation. The scheme presumes a
	// well-formed scan design: one floating net or combinational loop
	// silently corrupts every signature, so strict benches refuse to
	// simulate such inputs instead of diagnosing garbage.
	StrictDRC bool
}

func (o Options) withDefaults() Options {
	if o.PRPGSeed == 0 {
		o.PRPGSeed = 0xACE1
	}
	if o.PRPGPoly == 0 {
		o.PRPGPoly = lfsr.MustPrimitivePoly(16)
	}
	if o.Chains == 0 {
		o.Chains = 1
	}
	return o
}

func (o Options) validate() error {
	if o.Scheme == nil {
		return fmt.Errorf("core: options need a partitioning scheme")
	}
	if o.Groups < 1 || o.Partitions < 1 || o.Patterns < 1 {
		return fmt.Errorf("core: groups, partitions and patterns must be positive")
	}
	if err := o.Noise.Validate(); err != nil {
		return err
	}
	if o.Retry.MaxRetries < 0 {
		return fmt.Errorf("core: retry count %d < 0", o.Retry.MaxRetries)
	}
	if o.VoteThreshold < 0 {
		return fmt.Errorf("core: vote threshold %d < 0", o.VoteThreshold)
	}
	if o.VoteThreshold > o.Partitions {
		return fmt.Errorf("core: vote threshold %d exceeds %d partitions (nothing could ever be pruned)", o.VoteThreshold, o.Partitions)
	}
	if o.Lanes < 0 || o.Lanes > sim.MaxBatchLanes {
		return fmt.Errorf("core: lane cap %d outside 0..%d", o.Lanes, sim.MaxBatchLanes)
	}
	return nil
}

// attachTiers wires the cache knobs at bench construction: the budget is
// installed first (so the first bench of a sweep bounds the cache for
// every later borrower) and the disk tier is attached when CacheDir is
// set, creating a cache to host it if the caller supplied none.
func (o *Options) attachTiers() error {
	if o.CacheDir != "" && o.Cache == nil {
		o.Cache = pipeline.NewCache()
	}
	if o.CacheBudget != (pipeline.Budget{}) {
		o.Cache.SetBudget(o.CacheBudget)
	}
	if o.CacheDir != "" {
		return o.Cache.AttachDir(o.CacheDir)
	}
	return nil
}

// spec extracts the artifact content key: exactly the Options fields that
// shape build artifacts, with defaults resolved.
func (o Options) spec() pipeline.Spec {
	return pipeline.Spec{
		Scheme:     o.Scheme,
		Groups:     o.Groups,
		Partitions: o.Partitions,
		Patterns:   o.Patterns,
		PRPGSeed:   o.PRPGSeed,
		PRPGPoly:   o.PRPGPoly,
		MISRPoly:   o.MISRPoly,
		Ideal:      o.Ideal,
		Chains:     o.Chains,
		ScanOrder:  o.ScanOrder,
	}.Normalized()
}

// FaultDiagnosis is the per-fault outcome of a study.
type FaultDiagnosis struct {
	Fault sim.Fault
	// Actual holds the truly failing cells (simulation ground truth).
	Actual *bitset.Set
	// Detected reports whether any scan cell captured an error; undetected
	// faults are excluded from DR.
	Detected bool
	// Result holds candidate sets (intersection and pruned). Under a noisy
	// tester this is the robust (vote-threshold) outcome.
	Result *diagnosis.Result
	// Baseline is the hard-intersection result over the same noisy
	// verdicts — what the paper's pipeline would have concluded from this
	// unreliable run. Nil for a perfect tester, where it would equal
	// Result.
	Baseline *diagnosis.Result
	// Reliability summarises the tester noise absorbed and the retry
	// budget spent for this fault. Nil for a perfect tester.
	Reliability *bist.Reliability
	// CandidatesByPartition[k-1] is the intersection candidate count after
	// the first k partitions.
	CandidatesByPartition []int
	// Completeness records how many of the scheduled partitions the
	// verdicts reflect. A degraded run (deadline mid-session) reports
	// Observed < Scheduled, and Result then holds the sound conservative
	// superset from the observed prefix; see DiagnoseFaultContext.
	Completeness diagnosis.Completeness
}

// Missed reports whether the final (pruned) candidate set lost a truly
// failing cell — the unsoundness a robust diagnosis must avoid.
func (fd *FaultDiagnosis) Missed() bool {
	return fd.Detected && !fd.Result.Pruned.SupersetOf(fd.Actual)
}

// Study aggregates a scheme's diagnostic resolution over many faults.
type Study struct {
	SchemeName string
	Groups     int
	Partitions int
	Patterns   int

	Diagnosed  int // detected faults included in DR
	Undetected int // faults with no failing scan cell (excluded)

	// ByPartition[k-1] accumulates DR over the first k partitions, without
	// pruning.
	ByPartition []diagnosis.DR
	// Full is DR with all partitions, without pruning.
	Full diagnosis.DR
	// Pruned is DR with all partitions, with superposition pruning.
	Pruned diagnosis.DR

	// Misses counts diagnosed faults whose final candidate set lost a
	// truly failing cell (zero for a sound diagnosis).
	Misses int
	// BaselineFull and BaselineMisses mirror Full and Misses for the
	// hard-intersection baseline over the same noisy verdicts; populated
	// only when the tester model injects noise.
	BaselineFull   diagnosis.DR
	BaselineMisses int
	// Reliability aggregates tester noise and retry spend across the run's
	// diagnosed faults (all-zero for a perfect tester).
	Reliability bist.Reliability
	// Completeness records how many of the scheduled faults this study
	// aggregates. A cancelled sweep (RunContext and friends) reports the
	// contiguous fault prefix it finished; a completed sweep reports
	// Observed == Scheduled.
	Completeness diagnosis.Completeness
	// PlanBatches and PlanFill describe the batch schedule the sweep ran
	// on: the number of compiled batches and the scheduler-saturation
	// metric (faults / lane slots; see sim.BatchPlan.Fill). Zero values
	// mean the sweep never built a batch plan.
	PlanBatches int
	PlanFill    float64
}

func newStudy(o Options, schemeName string) *Study {
	return &Study{
		SchemeName:  schemeName,
		Groups:      o.Groups,
		Partitions:  o.Partitions,
		Patterns:    o.Patterns,
		ByPartition: make([]diagnosis.DR, o.Partitions),
	}
}

func (s *Study) add(fd *FaultDiagnosis) {
	if !fd.Detected {
		s.Undetected++
		return
	}
	s.Diagnosed++
	actual := fd.Actual.Len()
	for k := range s.ByPartition {
		s.ByPartition[k].Add(fd.CandidatesByPartition[k], actual)
	}
	s.Full.Add(fd.Result.Candidates.Len(), actual)
	s.Pruned.Add(fd.Result.Pruned.Len(), actual)
	if fd.Missed() {
		s.Misses++
	}
	if fd.Baseline != nil {
		s.BaselineFull.Add(fd.Baseline.Candidates.Len(), actual)
		if !fd.Baseline.Pruned.SupersetOf(fd.Actual) {
			s.BaselineMisses++
		}
	}
	if fd.Reliability != nil {
		s.Reliability.Merge(fd.Reliability)
	}
}

// PartitionsToReachDR returns the smallest partition count k whose
// unpruned DR is at most the target, or -1 if no prefix reaches it — the
// paper's Figure 5 quantity.
func (s *Study) PartitionsToReachDR(target float64) int {
	for k := range s.ByPartition {
		if s.ByPartition[k].Value() <= target {
			return k + 1
		}
	}
	return -1
}

// CircuitBench couples one full-scan circuit with its build artifacts
// (patterns, fault-free responses, engine, diagnoser) for repeated fault
// studies.
type CircuitBench struct {
	Circuit *circuit.Circuit
	Opts    Options

	art *pipeline.CircuitArtifacts
	fs  *sim.FaultSim // per-bench fork of the (possibly shared) simulator
}

// NewCircuitBench prepares the BIST environment for a circuit: generates
// the pattern set, simulates the fault-free machine, builds the scan
// configuration, partitions, and syndrome tables. With Opts.Cache set,
// benches sharing a content key borrow one artifact set instead of
// rebuilding it.
func NewCircuitBench(c *circuit.Circuit, opts Options) (*CircuitBench, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.StrictDRC {
		if err := drc.Error(c.Name, drc.Check(c)); err != nil {
			return nil, err
		}
	}
	if err := opts.attachTiers(); err != nil {
		return nil, err
	}
	art, err := opts.Cache.Circuit(c, opts.spec())
	if err != nil {
		return nil, err
	}
	return &CircuitBench{Circuit: c, Opts: opts, art: art, fs: art.Sim.Fork()}, nil
}

// Engine exposes the underlying BIST engine (partitions, signatures).
func (b *CircuitBench) Engine() *bist.Engine { return b.art.Engine }

// Artifacts exposes the bench's immutable build artifacts (shared with
// other benches when Opts.Cache deduplicated the build).
func (b *CircuitBench) Artifacts() *pipeline.CircuitArtifacts { return b.art }

// GoldenSignatures returns the precomputed fault-free signature per
// (partition, verdict slot) — the tester-side storage.
func (b *CircuitBench) GoldenSignatures() [][]uint64 { return b.art.Golden }

// Cost returns the plan's test-resource footprint.
func (b *CircuitBench) Cost() bist.Cost { return b.art.Engine.Cost() }

// Faults returns the collapsed stuck-at fault list of the circuit.
func (b *CircuitBench) Faults() []sim.Fault {
	return sim.CollapseFaults(b.Circuit, sim.FullFaultList(b.Circuit))
}

// DiagnoseFault runs the complete flow for one fault on the reference
// (unpooled) path; Run uses the pooled batch path with identical results.
func (b *CircuitBench) DiagnoseFault(f sim.Fault) *FaultDiagnosis {
	return b.diagnose(b.fs.Run(f))
}

// DiagnoseMulti runs the flow for several simultaneous faults — the
// paper's multiple-fault scenario, where fault cones produce disjoint or
// overlapping failing segments (Figure 2). The FaultDiagnosis carries the
// first fault.
func (b *CircuitBench) DiagnoseMulti(faults []sim.Fault) *FaultDiagnosis {
	return b.diagnose(b.fs.RunMulti(faults))
}

func (b *CircuitBench) diagnose(res *sim.Result) *FaultDiagnosis {
	fd := &FaultDiagnosis{Fault: res.Fault, Actual: res.FailingCells, Detected: res.Detected()}
	diagnoseFault(b.Opts, b.art.Engine, b.art.Diag, b.art.Good, b.art.Blocks, res.Faulty, fd)
	return fd
}

// diagnoseFault derives session verdicts — deterministic for a perfect
// tester, tri-state with retries and voting under noise — and fills in the
// candidate sets. Shared by the circuit- and SOC-level benches. This is
// the reference implementation the pooled worker path must match
// bit-for-bit; it allocates per call and is kept for single-fault APIs and
// equivalence tests.
func diagnoseFault(o Options, eng *bist.Engine, diag *diagnosis.Diagnoser, good []*sim.Response, blocks []*sim.Block, faulty []*sim.Response, fd *FaultDiagnosis) {
	if !fd.Detected {
		return
	}
	var v *bist.Verdicts
	if o.Noise.Enabled() {
		// Fork a per-fault substream keyed by the fault's identity so the
		// noise a fault sees is independent of diagnosis order.
		m := o.Noise.Fork(uint64(int64(fd.Fault.Net)+1), uint64(int64(fd.Fault.Gate)+1),
			uint64(int64(fd.Fault.Pin)+1), uint64(fd.Fault.Stuck))
		var rel *bist.Reliability
		v, rel = eng.NoisyVerdicts(good, faulty, blocks, m, o.Retry)
		fd.Reliability = rel
		fd.Baseline = diag.Diagnose(v)
		fd.Result = diag.DiagnoseRobust(v, o.VoteThreshold)
	} else {
		v = eng.Verdicts(good, faulty, blocks)
		fd.Result = diag.DiagnoseRobust(v, o.VoteThreshold)
	}
	fd.CandidatesByPartition = make([]int, o.Partitions)
	for k := 1; k <= o.Partitions; k++ {
		fd.CandidatesByPartition[k-1] = diag.Candidates(v, k).Len()
	}
}

// diagWorker carries one worker's reusable diagnosis buffers — a pooled
// Verdicts and the candidate-count scratch — so the steady-state fault
// loop only allocates what escapes into the FaultDiagnosis.
type diagWorker struct {
	o      Options
	eng    *bist.Engine
	diag   *diagnosis.Diagnoser
	good   []*sim.Response
	blocks []*sim.Block
	v      *bist.Verdicts
	counts []int
}

func newDiagWorker(o Options, eng *bist.Engine, diag *diagnosis.Diagnoser, good []*sim.Response, blocks []*sim.Block) *diagWorker {
	return &diagWorker{
		o: o, eng: eng, diag: diag, good: good, blocks: blocks,
		v:      eng.NewVerdicts(),
		counts: make([]int, o.Partitions),
	}
}

// diagnose is the pooled counterpart of diagnoseFault: verdicts land in
// the worker's reused buffers and candidate counts come from the
// O(cells × partitions) histogram pass instead of one bitset per prefix.
// actual and faulty may alias worker scratch; everything escaping into the
// FaultDiagnosis is copied.
func (w *diagWorker) diagnose(f sim.Fault, actual *bitset.Set, detected bool, faulty []*sim.Response) *FaultDiagnosis {
	fd := &FaultDiagnosis{Fault: f, Actual: actual.Clone(), Detected: detected}
	if !detected {
		return fd
	}
	var v *bist.Verdicts
	if w.o.Noise.Enabled() {
		m := w.o.Noise.Fork(uint64(int64(f.Net)+1), uint64(int64(f.Gate)+1),
			uint64(int64(f.Pin)+1), uint64(f.Stuck))
		var rel *bist.Reliability
		v, rel = w.eng.NoisyVerdicts(w.good, faulty, w.blocks, m, w.o.Retry)
		fd.Reliability = rel
		fd.Baseline = w.diag.Diagnose(v)
		fd.Result = w.diag.DiagnoseRobust(v, w.o.VoteThreshold)
	} else {
		w.eng.VerdictsInto(w.good, faulty, w.blocks, w.v)
		v = w.v
		fd.Result = w.diag.DiagnoseRobust(v, w.o.VoteThreshold)
	}
	w.diag.CandidateCounts(v, w.counts)
	fd.CandidatesByPartition = append([]int(nil), w.counts...)
	return fd
}

// Run diagnoses every fault and aggregates the study, using
// Opts.Workers goroutines.
func (b *CircuitBench) Run(faults []sim.Fault) *Study {
	return b.RunObserved(faults, nil)
}

// RunObserved is Run with a per-fault callback, invoked in fault order
// after all diagnoses complete, for reporting and tracing. The sweep is
// scheduled through the fault-parallel engine: faults are packed into
// cone-disjoint batches (sim.PlanBatches), whole batches are distributed
// over the worker pool, and each member is materialized into the same
// per-fault responses the event-driven engine produces — so results are
// identical for every worker count and bit-for-bit identical to the
// single-fault path.
func (b *CircuitBench) RunObserved(faults []sim.Fault, observe func(*FaultDiagnosis)) *Study {
	study, err := b.RunObservedContext(context.Background(), faults, observe)
	if err != nil {
		// Background context never cancels, so the only failure is a
		// recovered worker panic; keep the historical crash-loudly
		// contract for the context-free API.
		panic(err)
	}
	return study
}

// SOCBench is the SOC-level counterpart: the DUT is a set of cores on a
// TestRail, the fault lives in one core, and diagnosis runs over the meta
// scan chains.
type SOCBench struct {
	SOC  *soc.SOC
	Opts Options

	art *pipeline.SOCArtifacts
	fs  *soc.FaultSim // per-bench fork of the (possibly shared) simulator
}

// NewSOCBench prepares the BIST environment over the SOC's meta chains
// (Opts.Chains selects the TAM width; 1 is the single meta chain).
func NewSOCBench(s *soc.SOC, opts Options) (*SOCBench, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.ScanOrder != nil {
		return nil, fmt.Errorf("core: custom scan order is not supported at SOC level; the TestRail fixes daisy order")
	}
	if opts.StrictDRC {
		if err := drc.Error(s.Name, drc.CheckSOC(s, opts.Chains)); err != nil {
			return nil, err
		}
	}
	if err := opts.attachTiers(); err != nil {
		return nil, err
	}
	art, err := opts.Cache.SOC(s, opts.spec())
	if err != nil {
		return nil, err
	}
	return &SOCBench{SOC: s, Opts: opts, art: art, fs: art.Sim.Fork()}, nil
}

// Engine exposes the underlying BIST engine.
func (b *SOCBench) Engine() *bist.Engine { return b.art.Engine }

// Artifacts exposes the bench's immutable build artifacts.
func (b *SOCBench) Artifacts() *pipeline.SOCArtifacts { return b.art }

// GoldenSignatures returns the precomputed fault-free signature per
// (partition, verdict slot).
func (b *SOCBench) GoldenSignatures() [][]uint64 { return b.art.Golden }

// Cost returns the plan's test-resource footprint over the TAM.
func (b *SOCBench) Cost() bist.Cost { return b.art.Engine.Cost() }

// CoreFaults returns the collapsed fault list of core i.
func (b *SOCBench) CoreFaults(i int) []sim.Fault { return b.fs.CoreFaults(i) }

// DiagnoseFault runs the flow for a fault injected into one core on the
// reference (unpooled) path.
func (b *SOCBench) DiagnoseFault(core int, f sim.Fault) *FaultDiagnosis {
	return b.diagnose(b.fs.Run(core, f))
}

// DiagnoseMultiCore runs the flow with one fault in each of several cores
// simultaneously — multiple spot defects, each contributing a clustered
// failing segment to the meta chain.
func (b *SOCBench) DiagnoseMultiCore(coreFaults map[int]sim.Fault) *FaultDiagnosis {
	return b.diagnose(b.fs.RunMulti(coreFaults))
}

func (b *SOCBench) diagnose(res *soc.Result) *FaultDiagnosis {
	fd := &FaultDiagnosis{Fault: res.Fault, Actual: res.FailingCells, Detected: res.Detected()}
	diagnoseFault(b.Opts, b.art.Engine, b.art.Diag, b.fs.Good(), b.fs.Blocks(), res.Faulty, fd)
	return fd
}

// RunCore diagnoses a set of faults all injected into one core (the
// paper's one-faulty-core-per-session assumption), using Opts.Workers
// goroutines. Like CircuitBench.Run, the sweep schedules cone-disjoint
// fault batches over the pool; each member is materialized into the global
// meta-chain cell space exactly as the event-driven path would have.
func (b *SOCBench) RunCore(core int, faults []sim.Fault) *Study {
	study, err := b.RunCoreContext(context.Background(), core, faults)
	if err != nil {
		// See RunObserved: only a recovered worker panic can land here.
		panic(err)
	}
	return study
}
