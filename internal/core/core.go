// Package core orchestrates the paper's full diagnosis flow: pattern
// generation, fault simulation, multi-session signature collection under a
// partitioning scheme, candidate derivation, and the diagnostic-resolution
// (DR) metric — for a single full-scan circuit or for a core-based SOC
// tested through a TestRail. It is the layer the examples, command-line
// tools, and experiment drivers build on.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bist"
	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/diagnosis"
	"repro/internal/lfsr"
	"repro/internal/noise"
	"repro/internal/partition"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/soc"
)

// Options configures a diagnosis study.
type Options struct {
	// Scheme partitions the scan chains; required.
	Scheme partition.Scheme
	// Groups per partition (the paper's b).
	Groups int
	// Partitions to apply (each adds Groups BIST sessions).
	Partitions int
	// Patterns per BIST session.
	Patterns int
	// PRPGSeed seeds the pattern generator; zero selects 0xACE1.
	PRPGSeed uint64
	// PRPGPoly is the pattern-generator polynomial; zero selects the
	// paper's degree-16 primitive polynomial.
	PRPGPoly lfsr.Poly
	// MISRPoly is the compaction polynomial; zero selects degree 16.
	MISRPoly lfsr.Poly
	// Ideal bypasses MISR compaction (no aliasing); for ablations.
	Ideal bool
	// Chains splits the scan cells into this many balanced chains; zero
	// selects a single chain.
	Chains int
	// ScanOrder optionally overrides the natural (structural) scan order;
	// must be a permutation of the cell indices.
	ScanOrder []int
	// Workers bounds the goroutines used to diagnose faults concurrently.
	// Zero selects GOMAXPROCS; 1 forces serial execution. Results are
	// identical regardless of the worker count: each fault's diagnosis is
	// independent and aggregation preserves fault order.
	Workers int
	// Noise models an unreliable tester (intermittent fault activation,
	// verdict flips, session aborts). The zero value is a perfect tester
	// and keeps the exact deterministic code path. Each fault draws an
	// independent, reproducible noise substream derived from Noise.Seed
	// and the fault's identity, so results do not depend on diagnosis
	// order or worker count.
	Noise noise.Model
	// Retry schedules repeated executions of every session under noise;
	// completed executions vote on the tri-state verdict. Ignored for a
	// perfect tester.
	Retry bist.RetryPolicy
	// VoteThreshold K makes pruning demand corroboration: a cell is pruned
	// only when its group passed in at least K partitions (Unknown
	// verdicts never prune). 0 or 1 is the paper's hard intersection.
	VoteThreshold int
}

func (o Options) withDefaults() Options {
	if o.PRPGSeed == 0 {
		o.PRPGSeed = 0xACE1
	}
	if o.PRPGPoly == 0 {
		o.PRPGPoly = lfsr.MustPrimitivePoly(16)
	}
	if o.Chains == 0 {
		o.Chains = 1
	}
	return o
}

func (o Options) validate() error {
	if o.Scheme == nil {
		return fmt.Errorf("core: options need a partitioning scheme")
	}
	if o.Groups < 1 || o.Partitions < 1 || o.Patterns < 1 {
		return fmt.Errorf("core: groups, partitions and patterns must be positive")
	}
	if err := o.Noise.Validate(); err != nil {
		return err
	}
	if o.Retry.MaxRetries < 0 {
		return fmt.Errorf("core: retry count %d < 0", o.Retry.MaxRetries)
	}
	if o.VoteThreshold < 0 {
		return fmt.Errorf("core: vote threshold %d < 0", o.VoteThreshold)
	}
	if o.VoteThreshold > o.Partitions {
		return fmt.Errorf("core: vote threshold %d exceeds %d partitions (nothing could ever be pruned)", o.VoteThreshold, o.Partitions)
	}
	return nil
}

func (o Options) scanConfig(numCells int) (scan.Config, error) {
	order := o.ScanOrder
	if order == nil {
		order = scan.NaturalOrder(numCells)
	}
	if len(order) != numCells {
		return scan.Config{}, fmt.Errorf("core: scan order covers %d of %d cells", len(order), numCells)
	}
	if o.Chains == 1 {
		return scan.SingleChainOrdered(order), nil
	}
	return scan.SplitContiguous(order, o.Chains)
}

func (o Options) plan() bist.Plan {
	return bist.Plan{
		Scheme:     o.Scheme,
		Groups:     o.Groups,
		Partitions: o.Partitions,
		MISRPoly:   o.MISRPoly,
		Ideal:      o.Ideal,
	}
}

// FaultDiagnosis is the per-fault outcome of a study.
type FaultDiagnosis struct {
	Fault sim.Fault
	// Actual holds the truly failing cells (simulation ground truth).
	Actual *bitset.Set
	// Detected reports whether any scan cell captured an error; undetected
	// faults are excluded from DR.
	Detected bool
	// Result holds candidate sets (intersection and pruned). Under a noisy
	// tester this is the robust (vote-threshold) outcome.
	Result *diagnosis.Result
	// Baseline is the hard-intersection result over the same noisy
	// verdicts — what the paper's pipeline would have concluded from this
	// unreliable run. Nil for a perfect tester, where it would equal
	// Result.
	Baseline *diagnosis.Result
	// Reliability summarises the tester noise absorbed and the retry
	// budget spent for this fault. Nil for a perfect tester.
	Reliability *bist.Reliability
	// CandidatesByPartition[k-1] is the intersection candidate count after
	// the first k partitions.
	CandidatesByPartition []int
}

// Missed reports whether the final (pruned) candidate set lost a truly
// failing cell — the unsoundness a robust diagnosis must avoid.
func (fd *FaultDiagnosis) Missed() bool {
	return fd.Detected && !fd.Result.Pruned.SupersetOf(fd.Actual)
}

// Study aggregates a scheme's diagnostic resolution over many faults.
type Study struct {
	SchemeName string
	Groups     int
	Partitions int
	Patterns   int

	Diagnosed  int // detected faults included in DR
	Undetected int // faults with no failing scan cell (excluded)

	// ByPartition[k-1] accumulates DR over the first k partitions, without
	// pruning.
	ByPartition []diagnosis.DR
	// Full is DR with all partitions, without pruning.
	Full diagnosis.DR
	// Pruned is DR with all partitions, with superposition pruning.
	Pruned diagnosis.DR

	// Misses counts diagnosed faults whose final candidate set lost a
	// truly failing cell (zero for a sound diagnosis).
	Misses int
	// BaselineFull and BaselineMisses mirror Full and Misses for the
	// hard-intersection baseline over the same noisy verdicts; populated
	// only when the tester model injects noise.
	BaselineFull   diagnosis.DR
	BaselineMisses int
	// Reliability aggregates tester noise and retry spend across the run's
	// diagnosed faults (all-zero for a perfect tester).
	Reliability bist.Reliability
}

func newStudy(o Options, schemeName string) *Study {
	return &Study{
		SchemeName:  schemeName,
		Groups:      o.Groups,
		Partitions:  o.Partitions,
		Patterns:    o.Patterns,
		ByPartition: make([]diagnosis.DR, o.Partitions),
	}
}

func (s *Study) add(fd *FaultDiagnosis) {
	if !fd.Detected {
		s.Undetected++
		return
	}
	s.Diagnosed++
	actual := fd.Actual.Len()
	for k := range s.ByPartition {
		s.ByPartition[k].Add(fd.CandidatesByPartition[k], actual)
	}
	s.Full.Add(fd.Result.Candidates.Len(), actual)
	s.Pruned.Add(fd.Result.Pruned.Len(), actual)
	if fd.Missed() {
		s.Misses++
	}
	if fd.Baseline != nil {
		s.BaselineFull.Add(fd.Baseline.Candidates.Len(), actual)
		if !fd.Baseline.Pruned.SupersetOf(fd.Actual) {
			s.BaselineMisses++
		}
	}
	if fd.Reliability != nil {
		s.Reliability.Merge(fd.Reliability)
	}
}

// PartitionsToReachDR returns the smallest partition count k whose
// unpruned DR is at most the target, or -1 if no prefix reaches it — the
// paper's Figure 5 quantity.
func (s *Study) PartitionsToReachDR(target float64) int {
	for k := range s.ByPartition {
		if s.ByPartition[k].Value() <= target {
			return k + 1
		}
	}
	return -1
}

// CircuitBench couples one full-scan circuit with patterns, engine, and
// diagnoser for repeated fault studies.
type CircuitBench struct {
	Circuit *circuit.Circuit
	Opts    Options

	fs     *sim.FaultSim
	eng    *bist.Engine
	diag   *diagnosis.Diagnoser
	blocks []*sim.Block
	good   []*sim.Response
}

// NewCircuitBench prepares the BIST environment for a circuit: generates
// the pattern set, simulates the fault-free machine, builds the scan
// configuration, partitions, and syndrome tables.
func NewCircuitBench(c *circuit.Circuit, opts Options) (*CircuitBench, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	cfg, err := opts.scanConfig(c.NumDFFs())
	if err != nil {
		return nil, err
	}
	prpg, err := lfsr.New(opts.PRPGPoly, opts.PRPGSeed)
	if err != nil {
		return nil, err
	}
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), opts.Patterns)
	eng, err := bist.NewEngine(cfg, opts.plan(), opts.Patterns)
	if err != nil {
		return nil, err
	}
	diag, err := diagnosis.FromEngine(eng)
	if err != nil {
		return nil, err
	}
	b := &CircuitBench{Circuit: c, Opts: opts, eng: eng, diag: diag, blocks: blocks}
	b.fs = sim.NewFaultSim(c, blocks)
	for i := range blocks {
		b.good = append(b.good, b.fs.Good(i))
	}
	return b, nil
}

// Engine exposes the underlying BIST engine (partitions, signatures).
func (b *CircuitBench) Engine() *bist.Engine { return b.eng }

// Cost returns the plan's test-resource footprint.
func (b *CircuitBench) Cost() bist.Cost { return b.eng.Cost() }

// Faults returns the collapsed stuck-at fault list of the circuit.
func (b *CircuitBench) Faults() []sim.Fault {
	return sim.CollapseFaults(b.Circuit, sim.FullFaultList(b.Circuit))
}

// DiagnoseFault runs the complete flow for one fault.
func (b *CircuitBench) DiagnoseFault(f sim.Fault) *FaultDiagnosis {
	return b.diagnose(b.fs.Run(f))
}

// DiagnoseMulti runs the flow for several simultaneous faults — the
// paper's multiple-fault scenario, where fault cones produce disjoint or
// overlapping failing segments (Figure 2). The FaultDiagnosis carries the
// first fault.
func (b *CircuitBench) DiagnoseMulti(faults []sim.Fault) *FaultDiagnosis {
	return b.diagnose(b.fs.RunMulti(faults))
}

func (b *CircuitBench) diagnose(res *sim.Result) *FaultDiagnosis {
	fd := &FaultDiagnosis{Fault: res.Fault, Actual: res.FailingCells, Detected: res.Detected()}
	diagnoseFault(b.Opts, b.eng, b.diag, b.good, b.blocks, res.Faulty, fd)
	return fd
}

// diagnoseFault derives session verdicts — deterministic for a perfect
// tester, tri-state with retries and voting under noise — and fills in the
// candidate sets. Shared by the circuit- and SOC-level benches.
func diagnoseFault(o Options, eng *bist.Engine, diag *diagnosis.Diagnoser, good []*sim.Response, blocks []*sim.Block, faulty []*sim.Response, fd *FaultDiagnosis) {
	if !fd.Detected {
		return
	}
	var v *bist.Verdicts
	if o.Noise.Enabled() {
		// Fork a per-fault substream keyed by the fault's identity so the
		// noise a fault sees is independent of diagnosis order.
		m := o.Noise.Fork(uint64(int64(fd.Fault.Net)+1), uint64(int64(fd.Fault.Gate)+1),
			uint64(int64(fd.Fault.Pin)+1), uint64(fd.Fault.Stuck))
		var rel *bist.Reliability
		v, rel = eng.NoisyVerdicts(good, faulty, blocks, m, o.Retry)
		fd.Reliability = rel
		fd.Baseline = diag.Diagnose(v)
		fd.Result = diag.DiagnoseRobust(v, o.VoteThreshold)
	} else {
		v = eng.Verdicts(good, faulty, blocks)
		fd.Result = diag.DiagnoseRobust(v, o.VoteThreshold)
	}
	fd.CandidatesByPartition = make([]int, o.Partitions)
	for k := 1; k <= o.Partitions; k++ {
		fd.CandidatesByPartition[k-1] = diag.Candidates(v, k).Len()
	}
}

// Run diagnoses every fault and aggregates the study, using
// Opts.Workers goroutines.
func (b *CircuitBench) Run(faults []sim.Fault) *Study {
	return b.RunObserved(faults, nil)
}

// RunObserved is Run with a per-fault callback, invoked in fault order
// after all diagnoses complete, for reporting and tracing.
func (b *CircuitBench) RunObserved(faults []sim.Fault, observe func(*FaultDiagnosis)) *Study {
	study := newStudy(b.Opts, b.Opts.Scheme.Name())
	results := make([]*FaultDiagnosis, len(faults))
	runParallel(b.Opts.Workers, len(faults), func() func(int) {
		fs := b.fs.Fork()
		return func(i int) {
			// diagnose only reads the shared engine/diagnoser/pattern
			// state; the forked FaultSim provides per-goroutine scratch.
			results[i] = b.diagnose(fs.Run(faults[i]))
		}
	})
	for _, fd := range results {
		if observe != nil {
			observe(fd)
		}
		study.add(fd)
	}
	return study
}

// runParallel distributes n independent jobs over workers goroutines; each
// worker calls mkWorker once to obtain its own job function (carrying
// per-goroutine scratch state).
func runParallel(workers, n int, mkWorker func() func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		job := mkWorker()
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job := mkWorker()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// SOCBench is the SOC-level counterpart: the DUT is a set of cores on a
// TestRail, the fault lives in one core, and diagnosis runs over the meta
// scan chains.
type SOCBench struct {
	SOC  *soc.SOC
	Opts Options

	fs   *soc.FaultSim
	eng  *bist.Engine
	diag *diagnosis.Diagnoser
}

// NewSOCBench prepares the BIST environment over the SOC's meta chains
// (Opts.Chains selects the TAM width; 1 is the single meta chain).
func NewSOCBench(s *soc.SOC, opts Options) (*SOCBench, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.ScanOrder != nil {
		return nil, fmt.Errorf("core: custom scan order is not supported at SOC level; the TestRail fixes daisy order")
	}
	var cfg scan.Config
	if opts.Chains == 1 {
		cfg = s.SingleMetaChain()
	} else {
		var err error
		cfg, err = s.MetaChains(opts.Chains)
		if err != nil {
			return nil, err
		}
	}
	prpg, err := lfsr.New(opts.PRPGPoly, opts.PRPGSeed)
	if err != nil {
		return nil, err
	}
	patterns := s.GeneratePatterns(prpg, opts.Patterns)
	fs, err := soc.NewFaultSim(s, patterns)
	if err != nil {
		return nil, err
	}
	eng, err := bist.NewEngine(cfg, opts.plan(), opts.Patterns)
	if err != nil {
		return nil, err
	}
	diag, err := diagnosis.FromEngine(eng)
	if err != nil {
		return nil, err
	}
	return &SOCBench{SOC: s, Opts: opts, fs: fs, eng: eng, diag: diag}, nil
}

// Engine exposes the underlying BIST engine.
func (b *SOCBench) Engine() *bist.Engine { return b.eng }

// Cost returns the plan's test-resource footprint over the TAM.
func (b *SOCBench) Cost() bist.Cost { return b.eng.Cost() }

// CoreFaults returns the collapsed fault list of core i.
func (b *SOCBench) CoreFaults(i int) []sim.Fault { return b.fs.CoreFaults(i) }

// DiagnoseFault runs the flow for a fault injected into one core.
func (b *SOCBench) DiagnoseFault(core int, f sim.Fault) *FaultDiagnosis {
	return b.diagnose(b.fs.Run(core, f))
}

// DiagnoseMultiCore runs the flow with one fault in each of several cores
// simultaneously — multiple spot defects, each contributing a clustered
// failing segment to the meta chain.
func (b *SOCBench) DiagnoseMultiCore(coreFaults map[int]sim.Fault) *FaultDiagnosis {
	return b.diagnose(b.fs.RunMulti(coreFaults))
}

func (b *SOCBench) diagnose(res *soc.Result) *FaultDiagnosis {
	fd := &FaultDiagnosis{Fault: res.Fault, Actual: res.FailingCells, Detected: res.Detected()}
	diagnoseFault(b.Opts, b.eng, b.diag, b.fs.Good(), b.fs.Blocks(), res.Faulty, fd)
	return fd
}

// RunCore diagnoses a set of faults all injected into one core (the
// paper's one-faulty-core-per-session assumption), using Opts.Workers
// goroutines.
func (b *SOCBench) RunCore(core int, faults []sim.Fault) *Study {
	study := newStudy(b.Opts, b.Opts.Scheme.Name())
	results := make([]*FaultDiagnosis, len(faults))
	runParallel(b.Opts.Workers, len(faults), func() func(int) {
		fs := b.fs.Fork()
		return func(i int) {
			results[i] = b.diagnose(fs.Run(core, faults[i]))
		}
	})
	for _, fd := range results {
		study.add(fd)
	}
	return study
}
