package core

import (
	"context"

	"repro/internal/bist"
	"repro/internal/circuit"
	"repro/internal/diagnosis"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// This file is the context-aware face of the benches: cancellable fault
// sweeps that degrade to a sound partial study, and per-fault diagnosis
// that degrades to a conservative candidate superset when a deadline
// lands mid-session. The context-free APIs in core.go are thin wrappers
// over these with context.Background().

// sweepOptions picks the batch packing for a sweep. A cancellable sweep
// packs faults in list order (sim.BatchOptions.ScanOrder): the executor
// claims batch indices monotonically and drains in-flight claims, so the
// completed diagnoses form a contiguous prefix of the fault list — the
// partial study is a prefix of the full run, bit for bit. An
// uncancellable sweep keeps the cone-aware greedy packing, which fills
// lanes better. The lane cap (Options.Lanes; 0 = engine default) applies
// either way.
func sweepOptions(ctx context.Context, o Options) sim.BatchOptions {
	return sim.BatchOptions{MaxLanes: o.Lanes, ScanOrder: ctx.Done() != nil}
}

// stampPlan records the batch schedule's shape on the study, so CLIs and
// experiments can surface scheduler saturation alongside the results.
func stampPlan(study *Study, plan *sim.BatchPlan) {
	study.PlanBatches = len(plan.Batches)
	study.PlanFill = plan.Fill()
}

// finishStudy aggregates the longest contiguous prefix of completed
// diagnoses into the study and stamps its completeness. Results past the
// first gap (batches cancelled or abandoned mid-flight) are discarded:
// a prefix has a clean meaning — "the sweep ran out of time after fault
// n" — where a gappy subset does not.
func finishStudy(study *Study, results []*FaultDiagnosis, observe func(*FaultDiagnosis)) *Study {
	n := 0
	for n < len(results) && results[n] != nil {
		n++
	}
	for _, fd := range results[:n] {
		if observe != nil {
			observe(fd)
		}
		study.add(fd)
	}
	study.Completeness = diagnosis.Completeness{Observed: n, Scheduled: len(results)}
	return study
}

// RunContext is Run with cancellation: on a context deadline or cancel
// the sweep stops claiming batches, drains the ones in flight, and
// returns the partial study aggregating the contiguous prefix of faults
// it finished (Study.Completeness records how far it got) together with
// ctx's error. A nil error means the study is complete.
func (b *CircuitBench) RunContext(ctx context.Context, faults []sim.Fault) (*Study, error) {
	return b.RunObservedContext(ctx, faults, nil)
}

// RunObservedContext is RunContext with RunObserved's per-fault callback;
// observe sees exactly the faults the study aggregates, in fault order.
func (b *CircuitBench) RunObservedContext(ctx context.Context, faults []sim.Fault, observe func(*FaultDiagnosis)) (*Study, error) {
	study := newStudy(b.Opts, b.Opts.Scheme.Name())
	results := make([]*FaultDiagnosis, len(faults))
	release := b.Opts.Cache.PinCircuit(b.art)
	defer release()
	plan := b.Opts.Cache.Plan(b.Circuit, faults, sweepOptions(ctx, b.Opts))
	stampPlan(study, plan)
	err := pipeline.Executor{Workers: b.Opts.Workers, Retry: b.Opts.Retry.Policy()}.RunBatchesContext(ctx, len(plan.Batches), func() func(int) error {
		fs := b.fs.Fork()
		bs := fs.NewBatchScratch(plan)
		sc := fs.NewScratch()
		w := newDiagWorker(b.Opts, b.art.Engine, b.art.Diag, b.art.Good, b.art.Blocks)
		return func(pi int) error {
			cb := plan.Batches[pi]
			lane := -1
			defer annotatePanic(&lane, cb, b.Circuit)
			if err := fs.RunBatchContext(ctx, cb, bs); err != nil {
				return err
			}
			for k, i := range cb.Index {
				lane = k
				res := fs.MaterializeBatch(bs, k, sc)
				results[i] = w.diagnose(res.Fault, res.FailingCells, res.Detected(), res.Faulty)
			}
			return nil
		}
	})
	return finishStudy(study, results, observe), err
}

// RunCoreContext is RunCore with cancellation; semantics mirror
// RunContext (contiguous fault prefix, completeness stamp, ctx error).
func (b *SOCBench) RunCoreContext(ctx context.Context, core int, faults []sim.Fault) (*Study, error) {
	return b.RunCoreObservedContext(ctx, core, faults, nil)
}

// RunCoreObservedContext is RunCoreContext with a per-fault callback,
// mirroring RunObservedContext: observe sees exactly the faults the
// study aggregates, in fault order. Shard workers use it to capture the
// per-fault diagnoses an SOC shard ships back as verdict deltas.
func (b *SOCBench) RunCoreObservedContext(ctx context.Context, core int, faults []sim.Fault, observe func(*FaultDiagnosis)) (*Study, error) {
	study := newStudy(b.Opts, b.Opts.Scheme.Name())
	results := make([]*FaultDiagnosis, len(faults))
	release := b.Opts.Cache.PinSOC(b.art)
	defer release()
	plan := b.Opts.Cache.Plan(b.SOC.Cores[core].Circuit, faults, sweepOptions(ctx, b.Opts))
	stampPlan(study, plan)
	err := pipeline.Executor{Workers: b.Opts.Workers, Retry: b.Opts.Retry.Policy()}.RunBatchesContext(ctx, len(plan.Batches), func() func(int) error {
		fs := b.fs.Fork()
		bs := fs.NewCoreBatchScratch(core, plan)
		sc := fs.NewScratch()
		w := newDiagWorker(b.Opts, b.art.Engine, b.art.Diag, fs.Good(), fs.Blocks())
		return func(pi int) error {
			cb := plan.Batches[pi]
			lane := -1
			defer annotatePanic(&lane, cb, b.SOC.Cores[core].Circuit)
			if err := fs.RunBatchContext(ctx, core, cb, bs); err != nil {
				return err
			}
			for k, i := range cb.Index {
				lane = k
				res := fs.MaterializeBatch(core, bs, k, sc)
				results[i] = w.diagnose(res.Fault, res.FailingCells, res.Detected(), res.Faulty)
			}
			return nil
		}
	})
	return finishStudy(study, results, observe), err
}

// annotatePanic re-raises a panic unwinding out of a batch job wrapped in
// a pipeline.JobPanic carrying the batch lane and fault identity, so the
// executor's WorkerError can report which fault's diagnosis blew up.
func annotatePanic(lane *int, cb *sim.CompiledBatch, c *circuit.Circuit) {
	if r := recover(); r != nil {
		detail := ""
		if *lane >= 0 && *lane < len(cb.Faults) {
			detail = cb.Faults[*lane].Describe(c)
		}
		panic(&pipeline.JobPanic{Lane: *lane, Detail: detail, Value: r})
	}
}

// DiagnoseFaultContext is DiagnoseFault with a deadline: verdicts are
// collected partition by partition (bist.VerdictsUpTo) and a context
// ending mid-collection degrades to a diagnosis over the observed prefix
// — a sound, conservative superset of the full candidate set, because
// each further partition only ever removes candidates. The returned
// FaultDiagnosis carries Completeness (partitions observed / scheduled)
// and CandidatesByPartition truncated to the observed prefix; the ctx
// error is returned alongside it. Degraded collection models a perfect
// tester; with a noise model configured the full noisy flow runs if the
// context is still alive at entry.
func (b *CircuitBench) DiagnoseFaultContext(ctx context.Context, f sim.Fault) (*FaultDiagnosis, error) {
	res := b.fs.Run(f)
	return diagnosePartial(ctx, b.Opts, b.art.Engine, b.art.Diag, b.art.Good, b.art.Blocks,
		&FaultDiagnosis{Fault: res.Fault, Actual: res.FailingCells, Detected: res.Detected()}, res.Faulty)
}

// DiagnoseFaultContext mirrors CircuitBench.DiagnoseFaultContext for a
// fault injected into one core of the SOC.
func (b *SOCBench) DiagnoseFaultContext(ctx context.Context, core int, f sim.Fault) (*FaultDiagnosis, error) {
	res := b.fs.Run(core, f)
	return diagnosePartial(ctx, b.Opts, b.art.Engine, b.art.Diag, b.fs.Good(), b.fs.Blocks(),
		&FaultDiagnosis{Fault: res.Fault, Actual: res.FailingCells, Detected: res.Detected()}, res.Faulty)
}

// diagnosePartial is diagnoseFault's deadline-aware twin, shared by the
// circuit- and SOC-level DiagnoseFaultContext.
func diagnosePartial(ctx context.Context, o Options, eng *bist.Engine, diag *diagnosis.Diagnoser, good []*sim.Response, blocks []*sim.Block, fd *FaultDiagnosis, faulty []*sim.Response) (*FaultDiagnosis, error) {
	fd.Completeness = diagnosis.Completeness{Observed: o.Partitions, Scheduled: o.Partitions}
	if !fd.Detected {
		return fd, ctx.Err()
	}
	if o.Noise.Enabled() {
		// The noisy flow already runs every session Retry.Runs() times and
		// votes; a deadline fine enough to split it is not modelled, so it
		// is all-or-nothing on the context state at entry.
		if err := ctx.Err(); err != nil {
			fd.Completeness.Observed = 0
			fd.Result = diag.DiagnosePartial(eng.NewVerdicts(), 0)
			return fd, err
		}
		diagnoseFault(o, eng, diag, good, blocks, faulty, fd)
		return fd, nil
	}
	v := eng.NewVerdicts()
	k, err := eng.VerdictsUpTo(ctx, good, faulty, blocks, v)
	fd.Completeness.Observed = k
	fd.Result = diag.DiagnosePartial(v, k)
	fd.CandidatesByPartition = make([]int, k)
	for i := 1; i <= k; i++ {
		fd.CandidatesByPartition[i-1] = diag.Candidates(v, i).Len()
	}
	return fd, err
}
