package scanbist_test

// The benchmark harness: one benchmark per paper table/figure (exercising
// the full generate→simulate→compact→diagnose pipeline at a reduced fault
// sample; run cmd/experiments for paper-scale numbers) plus the ablation
// benchmarks DESIGN.md calls out and micro-benchmarks of the hot kernels.
// DR outcomes are attached to benchmark output as custom metrics, so
// `go test -bench` doubles as a compact results table.

import (
	"context"
	"testing"

	scanbist "repro"
	"repro/internal/adaptive"
	"repro/internal/atpg"
	"repro/internal/benchgen"
	"repro/internal/bist"
	"repro/internal/chaindiag"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/experiments"
	"repro/internal/lfsr"
	"repro/internal/partition"
	"repro/internal/reseed"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/testability"
	"repro/internal/vectors"
)

var benchCfg = experiments.Config{Faults: 60, FaultSeed: 1}

func BenchmarkTable1(b *testing.B) {
	var last []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(context.Background(), benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	b.ReportMetric(last[0].Interval, "DR-interval-1")
	b.ReportMetric(last[len(last)-1].TwoStep, "DR-twostep-8")
	b.ReportMetric(last[len(last)-1].Random, "DR-random-8")
}

func BenchmarkTable2(b *testing.B) {
	var last []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(context.Background(), benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	sumR, sumT := 0.0, 0.0
	for _, r := range last {
		sumR += r.Random
		sumT += r.TwoStep
	}
	b.ReportMetric(sumR/float64(len(last)), "DR-random-avg")
	b.ReportMetric(sumT/float64(len(last)), "DR-twostep-avg")
}

func benchmarkSOCTable(b *testing.B, run func(context.Context, experiments.Config) ([]experiments.SOCRow, error)) {
	var last []experiments.SOCRow
	for i := 0; i < b.N; i++ {
		rows, err := run(context.Background(), benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	sumR, sumT := 0.0, 0.0
	for _, r := range last {
		sumR += r.Random
		sumT += r.TwoStep
	}
	b.ReportMetric(sumR/float64(len(last)), "DR-random-avg")
	b.ReportMetric(sumT/float64(len(last)), "DR-twostep-avg")
}

func BenchmarkTable3(b *testing.B) { benchmarkSOCTable(b, experiments.Table3) }

func BenchmarkTable4(b *testing.B) { benchmarkSOCTable(b, experiments.Table4) }

func BenchmarkFigure3(b *testing.B) {
	var last *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(len(last.IntervalCandidates)), "candidates-interval")
	b.ReportMetric(float64(len(last.RandomCandidates)), "candidates-random")
}

func BenchmarkFigure5(b *testing.B) {
	var last []experiments.Figure5Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(context.Background(), benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	sumR, sumT := 0, 0
	for _, r := range last {
		if r.Random < 0 {
			sumR += 17
		} else {
			sumR += r.Random
		}
		if r.TwoStep < 0 {
			sumT += 17
		} else {
			sumT += r.TwoStep
		}
	}
	b.ReportMetric(float64(sumR)/float64(len(last)), "partitions-random-avg")
	b.ReportMetric(float64(sumT)/float64(len(last)), "partitions-twostep-avg")
}

// --- Ablations -----------------------------------------------------------

// runStudy builds a bench for s5378 with the given options and returns the
// study over a fixed fault sample.
func runStudy(b *testing.B, opts scanbist.Options) *scanbist.Study {
	b.Helper()
	c := scanbist.MustGenerate("s5378")
	cb, err := scanbist.NewCircuitBench(c, opts)
	if err != nil {
		b.Fatal(err)
	}
	faults := scanbist.SampleFaults(cb.Faults(), 60, 1)
	return cb.Run(faults)
}

// BenchmarkAblationScanOrder shows that interval-based pruning depends on
// the structure/position correlation: a random scan order erases two-step's
// first-partition advantage.
func BenchmarkAblationScanOrder(b *testing.B) {
	c := scanbist.MustGenerate("s5378")
	for _, order := range []string{"natural", "random"} {
		b.Run(order, func(b *testing.B) {
			opts := scanbist.Options{
				Scheme: scanbist.TwoStep(), Groups: 8, Partitions: 8, Patterns: 128,
			}
			if order == "random" {
				opts.ScanOrder = scanbist.RandomScanOrder(c.NumDFFs(), 1)
			}
			var study *scanbist.Study
			for i := 0; i < b.N; i++ {
				study = runStudy(b, opts)
			}
			b.ReportMetric(study.ByPartition[0].Value(), "DR-1-partition")
			b.ReportMetric(study.Full.Value(), "DR-full")
		})
	}
}

// BenchmarkAblationIntervalCount varies how many leading interval
// partitions the two-step scheme uses (the paper uses 1 but notes more can
// help).
func BenchmarkAblationIntervalCount(b *testing.B) {
	for _, m := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "interval1", 2: "interval2", 3: "interval3"}[m], func(b *testing.B) {
			opts := scanbist.Options{
				Scheme: partition.TwoStep{IntervalPartitions: m},
				Groups: 8, Partitions: 8, Patterns: 128,
			}
			var study *scanbist.Study
			for i := 0; i < b.N; i++ {
				study = runStudy(b, opts)
			}
			b.ReportMetric(study.ByPartition[2].Value(), "DR-3-partitions")
			b.ReportMetric(study.Full.Value(), "DR-full")
		})
	}
}

// BenchmarkAblationMISR compares real (aliasing-capable) compaction with an
// ideal alias-free compactor.
func BenchmarkAblationMISR(b *testing.B) {
	for _, mode := range []string{"misr32", "misr16", "ideal"} {
		b.Run(mode, func(b *testing.B) {
			opts := scanbist.Options{
				Scheme: scanbist.TwoStep(), Groups: 8, Partitions: 8, Patterns: 128,
			}
			switch mode {
			case "misr16":
				opts.MISRPoly = lfsr.MustPrimitivePoly(16)
			case "ideal":
				opts.Ideal = true
			}
			var study *scanbist.Study
			for i := 0; i < b.N; i++ {
				study = runStudy(b, opts)
			}
			b.ReportMetric(study.Full.Value(), "DR-full")
		})
	}
}

// BenchmarkAblationGroupCount varies the number of groups per partition.
func BenchmarkAblationGroupCount(b *testing.B) {
	for _, groups := range []int{4, 8, 16, 32} {
		b.Run(map[int]string{4: "g4", 8: "g8", 16: "g16", 32: "g32"}[groups], func(b *testing.B) {
			opts := scanbist.Options{
				Scheme: scanbist.TwoStep(), Groups: groups, Partitions: 8, Patterns: 128,
			}
			var study *scanbist.Study
			for i := 0; i < b.N; i++ {
				study = runStudy(b, opts)
			}
			b.ReportMetric(study.Full.Value(), "DR-full")
		})
	}
}

// BenchmarkAblationSimWidth measures the value of 64-way bit-parallel
// simulation against pattern-at-a-time blocks.
func BenchmarkAblationSimWidth(b *testing.B) {
	c := benchgen.MustGenerate("s5378")
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	wide := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	var narrow []*sim.Block
	for _, blk := range wide {
		for j := 0; j < blk.N; j++ {
			nb := &sim.Block{N: 1, PI: make([]uint64, len(blk.PI)), State: make([]uint64, len(blk.State))}
			for i := range blk.PI {
				nb.PI[i] = blk.PI[i] >> uint(j) & 1
			}
			for i := range blk.State {
				nb.State[i] = blk.State[i] >> uint(j) & 1
			}
			narrow = append(narrow, nb)
		}
	}
	faults := sim.SampleFaults(sim.FullFaultList(c), 20, 1)
	for _, tc := range []struct {
		name   string
		blocks []*sim.Block
	}{{"parallel64", wide}, {"scalar", narrow}} {
		b.Run(tc.name, func(b *testing.B) {
			fs := sim.NewFaultSim(c, tc.blocks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range faults {
					fs.Run(f)
				}
			}
		})
	}
}

// --- Micro-benchmarks of the hot kernels ---------------------------------

func BenchmarkFaultSimulation(b *testing.B) {
	c := benchgen.MustGenerate("s13207")
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	faults := sim.SampleFaults(sim.FullFaultList(c), 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Run(faults[i%len(faults)])
	}
}

// BenchmarkIncrementalFaultSim contrasts the event-driven cone-restricted
// engine (the default behind Run/RunInto) with the full-pass reference on
// the same s13207 fault sample. The event path seeds one event at the
// fault site against cached fault-free values and touches only the fan-out
// cone, so it should run well over 3x faster than re-simulating every gate
// of every block.
func BenchmarkIncrementalFaultSim(b *testing.B) {
	c := benchgen.MustGenerate("s13207")
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	faults := sim.SampleFaults(sim.FullFaultList(c), 100, 1)
	b.Run("event", func(b *testing.B) {
		b.ReportAllocs()
		sc := fs.NewScratch()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fs.RunInto(faults[i%len(faults)], sc)
		}
	})
	b.Run("fullpass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fs.RunReference(faults[i%len(faults)])
		}
	})
}

// BenchmarkFaultBatchSweep contrasts the fault-parallel batch engine with
// the per-fault event-driven engine on the 500-fault s13207 sweep that
// dominates the Table 2/3 experiments. One iteration is a 20-sweep
// campaign (schedule reused, as in a real multi-scheme, multi-session
// run), so even a -benchtime 1x CI run times a multi-millisecond window;
// ns/fault is the amortized per-fault simulation time the PR4 acceptance
// criterion tracks.
func BenchmarkFaultBatchSweep(b *testing.B) {
	c := benchgen.MustGenerate("s13207")
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	faults := sim.SampleFaults(sim.FullFaultList(c), 500, 1)
	const sweepsPerIter = 20
	// Each sub-benchmark runs untimed warmup sweeps so a -benchtime 1x CI
	// run measures the steady state the multi-scheme experiments live in
	// (caches hot, branch predictors trained, CPU clocks ramped) rather
	// than first-touch costs.
	b.Run("batched", func(b *testing.B) {
		plan := sim.PlanBatches(c, faults, sim.BatchOptions{})
		bs := fs.NewBatchScratch(plan)
		sc := fs.NewScratch()
		sink := 0
		for w := 0; w < 100; w++ {
			for _, cb := range plan.Batches {
				fs.RunBatch(cb, bs)
				for k := range cb.Index {
					sink += fs.MaterializeBatch(bs, k, sc).DetectingPatterns
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for s := 0; s < sweepsPerIter; s++ {
				for _, cb := range plan.Batches {
					fs.RunBatch(cb, bs)
					for k := range cb.Index {
						sink += fs.MaterializeBatch(bs, k, sc).DetectingPatterns
					}
				}
			}
		}
		b.StopTimer()
		if sink == 0 {
			b.Fatal("sweep detected nothing")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sweepsPerIter*len(faults)), "ns/fault")
	})
	b.Run("event", func(b *testing.B) {
		sc := fs.NewScratch()
		sink := 0
		for w := 0; w < 10; w++ {
			for _, f := range faults {
				sink += fs.RunInto(f, sc).DetectingPatterns
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for s := 0; s < sweepsPerIter; s++ {
				for _, f := range faults {
					sink += fs.RunInto(f, sc).DetectingPatterns
				}
			}
		}
		b.StopTimer()
		if sink == 0 {
			b.Fatal("sweep detected nothing")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sweepsPerIter*len(faults)), "ns/fault")
	})
}

func BenchmarkLFSRStep(b *testing.B) {
	l := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	for i := 0; i < b.N; i++ {
		l.Step()
	}
}

func BenchmarkMISRClock(b *testing.B) {
	m := lfsr.MustNewMISR(lfsr.MustPrimitivePoly(32))
	for i := 0; i < b.N; i++ {
		m.Clock(uint64(i))
	}
}

func BenchmarkVerdicts(b *testing.B) {
	c := benchgen.MustGenerate("s13207")
	cfg := scan.SingleChain(c.NumDFFs())
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	eng, err := bist.NewEngine(cfg, bist.Plan{
		Scheme: partition.TwoStep{}, Groups: 16, Partitions: 8,
	}, 128)
	if err != nil {
		b.Fatal(err)
	}
	good := make([]*sim.Response, len(blocks))
	for i := range blocks {
		good[i] = fs.Good(i)
	}
	var detected *sim.Result
	for _, f := range sim.SampleFaults(sim.FullFaultList(c), 50, 1) {
		if r := fs.Run(f); r.Detected() {
			detected = r
			break
		}
	}
	if detected == nil {
		b.Fatal("no detected fault")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Verdicts(good, detected.Faulty, blocks)
	}
}

func BenchmarkIntervalSeedSearch(b *testing.B) {
	poly := lfsr.MustPrimitivePoly(16)
	for i := 0; i < b.N; i++ {
		if _, err := partition.FindSeeds(poly, partition.AutoLenBits(638, 16), 638, 16, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircuitGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchgen.MustGenerate("s13207")
	}
}

func BenchmarkCore13207EndToEnd(b *testing.B) {
	c := benchgen.MustGenerate("s13207")
	for i := 0; i < b.N; i++ {
		cb, err := core.NewCircuitBench(c, core.Options{
			Scheme: partition.TwoStep{}, Groups: 16, Partitions: 8, Patterns: 128,
		})
		if err != nil {
			b.Fatal(err)
		}
		faults := sim.SampleFaults(cb.Faults(), 30, 1)
		cb.Run(faults)
	}
}

// --- Extension subsystems -------------------------------------------------

func BenchmarkPODEM(b *testing.B) {
	c := benchgen.MustGenerate("s5378")
	g := atpg.New(c)
	faults := sim.SampleFaults(sim.CollapseFaults(c, sim.FullFaultList(c)), 50, 1)
	b.ResetTimer()
	detected := 0
	for i := 0; i < b.N; i++ {
		_, outcome := g.Generate(faults[i%len(faults)])
		if outcome == atpg.Detected {
			detected++
		}
	}
	b.ReportMetric(float64(detected)/float64(b.N), "detect-rate")
}

func BenchmarkAdaptiveDiagnosis(b *testing.B) {
	c := benchgen.MustGenerate("s5378")
	cfg := scan.SingleChain(c.NumDFFs())
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	eng, err := bist.NewEngine(cfg, bist.Plan{
		Scheme: partition.TwoStep{}, Groups: 8, Partitions: 1,
	}, 128)
	if err != nil {
		b.Fatal(err)
	}
	good := make([]*sim.Response, len(blocks))
	for i := range blocks {
		good[i] = fs.Good(i)
	}
	var syn []uint64
	for _, f := range sim.SampleFaults(sim.FullFaultList(c), 50, 1) {
		if r := fs.Run(f); r.Detected() {
			syn = eng.CellSyndromes(good, r.Faulty, blocks)
			break
		}
	}
	if syn == nil {
		b.Fatal("no detected fault")
	}
	b.ResetTimer()
	sessions := 0
	for i := 0; i < b.N; i++ {
		o := adaptive.NewSyndromeOracle(syn)
		adaptive.Diagnose(o, c.NumDFFs())
		sessions = o.Sessions()
	}
	b.ReportMetric(float64(sessions), "sessions")
}

func BenchmarkDictionaryBuild(b *testing.B) {
	c := benchgen.MustGenerate("s953")
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	faults := sim.CollapseFaults(c, sim.FullFaultList(c))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dictionary.Build(fs, faults)
	}
}

func BenchmarkDictionaryLookup(b *testing.B) {
	c := benchgen.MustGenerate("s5378")
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	faults := sim.CollapseFaults(c, sim.FullFaultList(c))
	d := dictionary.Build(fs, faults)
	query := d.Entries()[len(d.Entries())/2].Cells
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(query, 10)
	}
}

func BenchmarkVectorDiagnosis(b *testing.B) {
	c := benchgen.MustGenerate("s953")
	cfg := scan.SingleChain(c.NumDFFs())
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	eng, err := vectors.NewEngine(cfg, vectors.Plan{
		Scheme: partition.TwoStep{}, Groups: 8, Partitions: 8,
	}, 128)
	if err != nil {
		b.Fatal(err)
	}
	good := make([]*sim.Response, len(blocks))
	for i := range blocks {
		good[i] = fs.Good(i)
	}
	var res *sim.Result
	for _, f := range sim.SampleFaults(sim.FullFaultList(c), 50, 1) {
		if r := fs.Run(f); r.Detected() {
			res = r
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Diagnose(good, res.Faulty, blocks)
	}
}

func BenchmarkCoverageMeasurement(b *testing.B) {
	c := benchgen.MustGenerate("s953")
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	faults := sim.SampleFaults(sim.CollapseFaults(c, sim.FullFaultList(c)), 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.MeasureCoverage(fs, faults)
	}
}

// BenchmarkAblationScanStitching shows the structural stitching recovering
// two-step's advantage when the netlist order is scrambled: diagnose with
// (a) the scrambled order as-is and (b) the structurally recovered order.
func BenchmarkAblationScanStitching(b *testing.B) {
	c := scanbist.MustGenerate("s5378")
	scrambled := scanbist.RandomScanOrder(c.NumDFFs(), 3)
	structural := scan.StructuralOrder(c)
	for _, tc := range []struct {
		name  string
		order []int
	}{{"scrambled", scrambled}, {"restitched", structural}} {
		b.Run(tc.name, func(b *testing.B) {
			opts := scanbist.Options{
				Scheme: scanbist.TwoStep(), Groups: 8, Partitions: 8, Patterns: 128,
				ScanOrder: tc.order,
			}
			var study *scanbist.Study
			for i := 0; i < b.N; i++ {
				study = runStudy(b, opts)
			}
			b.ReportMetric(study.Full.Value(), "DR-full")
		})
	}
}

func BenchmarkChainDiagnosis(b *testing.B) {
	c := benchgen.MustGenerate("s953")
	order := scan.NaturalOrder(c.NumDFFs())
	truth := &chaindiag.ChainFault{Position: 12, Stuck: 1}
	dut, err := chaindiag.NewDevice(c, order, truth)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := chaindiag.Diagnose(c, order, dut.LoadCaptureObserve); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSCOAP(b *testing.B) {
	c := benchgen.MustGenerate("s13207")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testability.Compute(c)
	}
}

func BenchmarkReseedSolve(b *testing.B) {
	c := benchgen.MustGenerate("s5378")
	solver, err := reseed.NewSolver(lfsr.MustPrimitivePoly(32), c.NumDFFs()+c.NumInputs())
	if err != nil {
		b.Fatal(err)
	}
	gen := atpg.New(c)
	var pos []int
	var vals []bool
	for _, f := range sim.SampleFaults(sim.FullFaultList(c), 40, 1) {
		if test, outcome := gen.Generate(f); outcome == atpg.Detected {
			pos, vals = test.Care()
			break
		}
	}
	if pos == nil {
		b.Fatal("no cube")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.SeedFor(pos, vals)
	}
}

func BenchmarkPhaseShifter(b *testing.B) {
	l := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	ps, err := lfsr.NewPhaseShifter(l, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Step()
	}
}

func BenchmarkTransitionFaultSim(b *testing.B) {
	c := benchgen.MustGenerate("s5378")
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	faults := sim.TransitionFaultList(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.RunTransition(faults[i%len(faults)])
	}
}

// --- Pipeline: artifact cache and pooled fault loop ----------------------

// BenchmarkArtifactCache contrasts the cold artifact build (pattern
// expansion, whole-machine fault-free simulation, partition tables, golden
// signatures) with a content-keyed cache hit on an s9234-class circuit. The
// hit path skips the golden re-simulation entirely, so it should run orders
// of magnitude faster and nearly allocation-free.
func BenchmarkArtifactCache(b *testing.B) {
	c := benchgen.MustGenerate("s9234")
	opts := scanbist.Options{Scheme: scanbist.TwoStep(), Groups: 16, Partitions: 8, Patterns: 128}
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scanbist.NewCircuitBench(c, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		opts := opts
		opts.Cache = scanbist.NewArtifactCache()
		if _, err := scanbist.NewCircuitBench(c, opts); err != nil {
			b.Fatal(err) // cold build warms the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := scanbist.NewCircuitBench(c, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDiskStoreWarmStart contrasts rebuilding the heaviest persisted
// artifact — the compiled batch plan over s13207's collapsed fault list,
// including the cone walks scheduling performs on a cold circuit — with a
// warm start off the persistent artifact tier: a fresh memory cache over a
// populated directory, so the plan and cone snapshot are read, decoded,
// and exhaustively validated from disk. Each iteration uses a freshly
// generated circuit (no memoized cones) to model a true process cold
// start; the disk hit skips the fan-out walks and lane packing, so it
// should be at least an order of magnitude cheaper.
func BenchmarkDiskStoreWarmStart(b *testing.B) {
	dir := b.TempDir()
	seedCircuit := benchgen.MustGenerate("s13207")
	seedFaults := sim.CollapseFaults(seedCircuit, sim.FullFaultList(seedCircuit))
	seed := scanbist.NewArtifactCache()
	if err := seed.AttachDir(dir); err != nil {
		b.Fatal(err)
	}
	seed.Plan(seedCircuit, seedFaults, sim.BatchOptions{}) // populates the disk tier

	run := func(b *testing.B, cacheDir string) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := benchgen.MustGenerate("s13207") // fresh process: no memoized cones
			faults := sim.CollapseFaults(c, sim.FullFaultList(c))
			cache := scanbist.NewArtifactCache()
			if cacheDir != "" {
				if err := cache.AttachDir(cacheDir); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if p := cache.Plan(c, faults, sim.BatchOptions{}); p.NumFaults() != len(faults) {
				b.Fatalf("plan covers %d of %d faults", p.NumFaults(), len(faults))
			}
		}
	}
	b.Run("rebuild", func(b *testing.B) { run(b, "") })
	b.Run("diskhit", func(b *testing.B) { run(b, dir) })
}

// BenchmarkPooledFaultLoop contrasts the reference per-fault DiagnoseFault
// path (allocating verdicts, responses, and per-prefix candidate bitsets
// every call) with the pooled Run path (per-worker reusable scratch,
// in-place verdicts, histogram candidate counts). Both run serially so the
// allocs/op column isolates pooling, not parallelism.
func BenchmarkPooledFaultLoop(b *testing.B) {
	c := benchgen.MustGenerate("s9234")
	cb, err := scanbist.NewCircuitBench(c, scanbist.Options{
		Scheme: scanbist.TwoStep(), Groups: 16, Partitions: 8, Patterns: 128, Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	faults := scanbist.SampleFaults(cb.Faults(), 32, 1)
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range faults {
				cb.DiagnoseFault(f)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cb.Run(faults)
		}
	})
}

func BenchmarkFullModelSession(b *testing.B) {
	c := benchgen.MustGenerate("s298")
	model, err := bist.NewFullModel(c, scan.NaturalOrder(c.NumDFFs()),
		partition.RandomSelection{}, 4, lfsr.MustPrimitivePoly(32), 0xACE1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.SessionSignature(nil, 8, 0, i%4); err != nil {
			b.Fatal(err)
		}
	}
}
