// Package scanbist is a from-scratch reproduction of
//
//	C. Liu and K. Chakrabarty, "A Partition-Based Approach for Identifying
//	Failing Scan Cells in Scan-BIST with Applications to System-on-Chip
//	Fault Diagnosis", Proc. DATE, 2003.
//
// It implements the complete stack the paper's evaluation needs: a
// gate-level netlist model with an ISCAS-89 .bench reader/writer, a
// deterministic generator of ISCAS-89-scale benchmark circuits with
// realistic structural locality, 64-way bit-parallel stuck-at fault
// simulation with equivalence collapsing, LFSR/MISR machinery over GF(2)
// with verified primitive polynomials, the paper's Figure-1 scan-cell
// selection hardware, the random-selection / interval-based / two-step
// partitioning schemes, signature-based candidate diagnosis with
// superposition pruning, and a TestRail-style SOC substrate with single and
// multi meta scan chains.
//
// This root package is the façade: it re-exports the high-level API used by
// the examples and command-line tools. The usual flow is
//
//	c := scanbist.MustGenerate("s953")
//	b, err := scanbist.NewCircuitBench(c, scanbist.Options{
//		Scheme:     scanbist.TwoStep(),
//		Groups:     4,
//		Partitions: 8,
//		Patterns:   200,
//	})
//	faults := scanbist.SampleFaults(b.Faults(), 500, 1)
//	study := b.Run(faults)
//	fmt.Println(study.Full.Value()) // diagnostic resolution
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure.
package scanbist
