// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                       # everything, paper-scale (500 faults)
//	experiments -exp table1           # one experiment
//	experiments -exp table3 -format csv > table3.csv
//	experiments -faults 100           # faster, smaller fault sample
//
// Experiments: table1, table2, table3, table4, figure3, figure5,
// baselines, noise, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/pipeline"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: baselines|tamwidth|transition|noise|table1|table2|table3|table4|figure3|figure5|all")
	faults := flag.Int("faults", 500, "stuck-at faults sampled per circuit or per faulty core")
	seed := flag.Int64("seed", 1, "fault sampling seed")
	workers := flag.Int("workers", 0, "goroutines per fault sweep (0 = all CPUs, 1 = serial; results are identical)")
	format := flag.String("format", "text", "output format: text|csv (csv not available for figure3)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(1)
	}
	known := []string{"all", "figure3", "table1", "table2", "table3", "table4",
		"figure5", "baselines", "tamwidth", "transition", "noise"}
	if !slices.Contains(known, *exp) {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (expected one of %s)\n",
			*exp, strings.Join(known, "|"))
		os.Exit(2)
	}
	if *faults < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -faults must be at least 1, got %d\n", *faults)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	// One artifact cache spans every experiment of the invocation, so
	// drivers revisiting a circuit (or plan) reuse its build artifacts.
	cfg := experiments.Config{Faults: *faults, FaultSeed: *seed, Workers: *workers, Cache: pipeline.NewCache()}
	run := func(name string, f func() (rows any, text string, err error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		rows, text, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *format == "csv" && rows != nil {
			if err := experiments.WriteCSV(os.Stdout, rows); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(text)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("figure3", func() (any, string, error) {
		r, err := experiments.Figure3()
		if err != nil {
			return nil, "", err
		}
		return nil, experiments.FormatFigure3(r), nil
	})
	run("table1", func() (any, string, error) {
		rows, err := experiments.Table1(cfg)
		return rows, experiments.FormatTable1(rows), err
	})
	run("table2", func() (any, string, error) {
		rows, err := experiments.Table2(cfg)
		return rows, experiments.FormatTable2(rows), err
	})
	run("table3", func() (any, string, error) {
		rows, err := experiments.Table3(cfg)
		return rows, experiments.FormatSOCTable(
			"Table 3: SOC1 diagnostic resolution, single meta scan chain\n"+
				"(8 partitions, 32 groups, 128 patterns/session, one faulty core at a time)", rows), err
	})
	run("table4", func() (any, string, error) {
		rows, err := experiments.Table4(cfg)
		return rows, experiments.FormatSOCTable(
			"Table 4: SOC2 (d695 variant) diagnostic resolution, 8 meta scan chains\n"+
				"(8 partitions, 8 groups/chain, 128 patterns/session, one faulty core at a time)", rows), err
	})
	run("figure5", func() (any, string, error) {
		rows, err := experiments.Figure5(cfg)
		return rows, experiments.FormatFigure5(rows), err
	})
	run("baselines", func() (any, string, error) {
		rows, err := experiments.Baselines(cfg)
		return rows, experiments.FormatBaselines(rows), err
	})
	run("tamwidth", func() (any, string, error) {
		rows, err := experiments.TAMWidth(cfg)
		return rows, experiments.FormatTAMWidth(rows), err
	})
	run("transition", func() (any, string, error) {
		rows, err := experiments.Transition(cfg)
		return rows, experiments.FormatTransition(rows), err
	})
	run("noise", func() (any, string, error) {
		rows, err := experiments.NoiseSweep(cfg)
		return rows, experiments.FormatNoiseSweep(rows), err
	})
}

// writeMemProfile snapshots the heap after a GC so the profile reflects
// retained memory, not transient garbage. A no-op for an empty path.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	}
}
