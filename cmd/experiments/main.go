// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                       # everything, paper-scale (500 faults)
//	experiments -exp table1           # one experiment
//	experiments -exp table3 -format csv > table3.csv
//	experiments -faults 100           # faster, smaller fault sample
//
// Experiments: table1, table2, table3, table4, figure3, figure5,
// baselines, noise, all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: baselines|tamwidth|transition|noise|table1|table2|table3|table4|figure3|figure5|all")
	faults := flag.Int("faults", 500, "stuck-at faults sampled per circuit or per faulty core")
	seed := flag.Int64("seed", 1, "fault sampling seed")
	workers := flag.Int("workers", 0, "goroutines per fault sweep (0 = all CPUs, 1 = serial; results are identical)")
	lanes := flag.Int("lanes", 0, "fault lanes per batch, 1-256 (0 = engine default 256; above 64 engages the wide-word kernel)")
	format := flag.String("format", "text", "output format: text|csv (csv not available for figure3)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole invocation (0 = none); on expiry in-flight work drains and completed experiments are kept")
	cacheMB := flag.Int64("cachemb", 0, "artifact-cache budget in MiB (0 = unbounded); least-recently-used builds are evicted past it")
	cacheDir := flag.String("cachedir", "", "persist build artifacts under this directory and reuse them across runs (warm start)")
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(1)
	}
	known := []string{"all", "figure3", "table1", "table2", "table3", "table4",
		"figure5", "baselines", "tamwidth", "transition", "noise"}
	if !slices.Contains(known, *exp) {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (expected one of %s)\n",
			*exp, strings.Join(known, "|"))
		os.Exit(2)
	}
	if *faults < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -faults must be at least 1, got %d\n", *faults)
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -workers must be non-negative, got %d\n", *workers)
		os.Exit(2)
	}
	if *lanes < 0 || *lanes > sim.MaxBatchLanes {
		fmt.Fprintf(os.Stderr, "experiments: -lanes %d out of range 0..%d\n", *lanes, sim.MaxBatchLanes)
		os.Exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -timeout must be non-negative, got %v\n", *timeout)
		os.Exit(2)
	}
	// maxCacheMB rejects budgets no machine this tool targets could hold
	// (1 TiB): such values are typos, not configurations.
	const maxCacheMB = 1 << 20
	if *cacheMB < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -cachemb must be non-negative, got %d\n", *cacheMB)
		os.Exit(2)
	}
	if *cacheMB > maxCacheMB {
		fmt.Fprintf(os.Stderr, "experiments: -cachemb must be at most %d (1 TiB), got %d\n", int64(maxCacheMB), *cacheMB)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	// The run is cancellable two ways: a -timeout deadline and Ctrl-C.
	// Either stops the fault sweeps at batch granularity, drains in-flight
	// work, and keeps every experiment that completed.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	// One artifact cache spans every experiment of the invocation, so
	// drivers revisiting a circuit (or plan) reuse its build artifacts;
	// -cachemb bounds its resident footprint.
	cache := pipeline.NewCacheWithBudget(pipeline.Budget{MaxBytes: *cacheMB << 20})
	if *cacheDir != "" {
		if err := cache.AttachDir(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			fmt.Fprintf(os.Stderr, "experiments: %s\n", cache.Stats())
		}()
	}
	cfg := experiments.Config{Faults: *faults, FaultSeed: *seed, Workers: *workers, Lanes: *lanes, Cache: cache}
	completed := 0
	run := func(name string, f func() (rows any, text string, err error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		rows, text, err := f()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "experiments: %s interrupted (%v) after %v; %d experiment(s) completed before it\n",
					name, err, time.Since(start).Round(time.Millisecond), completed)
				writeMemProfile(*memprofile)
				os.Exit(0)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		completed++
		if *format == "csv" && rows != nil {
			if err := experiments.WriteCSV(os.Stdout, rows); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(text)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("figure3", func() (any, string, error) {
		r, err := experiments.Figure3()
		if err != nil {
			return nil, "", err
		}
		return nil, experiments.FormatFigure3(r), nil
	})
	run("table1", func() (any, string, error) {
		rows, err := experiments.Table1(ctx, cfg)
		return rows, experiments.FormatTable1(rows), err
	})
	run("table2", func() (any, string, error) {
		rows, err := experiments.Table2(ctx, cfg)
		return rows, experiments.FormatTable2(rows), err
	})
	run("table3", func() (any, string, error) {
		rows, err := experiments.Table3(ctx, cfg)
		return rows, experiments.FormatSOCTable(
			"Table 3: SOC1 diagnostic resolution, single meta scan chain\n"+
				"(8 partitions, 32 groups, 128 patterns/session, one faulty core at a time)", rows), err
	})
	run("table4", func() (any, string, error) {
		rows, err := experiments.Table4(ctx, cfg)
		return rows, experiments.FormatSOCTable(
			"Table 4: SOC2 (d695 variant) diagnostic resolution, 8 meta scan chains\n"+
				"(8 partitions, 8 groups/chain, 128 patterns/session, one faulty core at a time)", rows), err
	})
	run("figure5", func() (any, string, error) {
		rows, err := experiments.Figure5(ctx, cfg)
		return rows, experiments.FormatFigure5(rows), err
	})
	run("baselines", func() (any, string, error) {
		rows, err := experiments.Baselines(ctx, cfg)
		return rows, experiments.FormatBaselines(rows), err
	})
	run("tamwidth", func() (any, string, error) {
		rows, err := experiments.TAMWidth(ctx, cfg)
		return rows, experiments.FormatTAMWidth(rows), err
	})
	run("transition", func() (any, string, error) {
		rows, err := experiments.Transition(ctx, cfg)
		return rows, experiments.FormatTransition(rows), err
	})
	run("noise", func() (any, string, error) {
		rows, err := experiments.NoiseSweep(ctx, cfg)
		return rows, experiments.FormatNoiseSweep(rows), err
	})
}

// writeMemProfile snapshots the heap after a GC so the profile reflects
// retained memory, not transient garbage. A no-op for an empty path.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	}
}
