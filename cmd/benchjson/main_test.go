package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFaultSimulation     	  257012	      8952 ns/op	   13609 B/op	      10 allocs/op
BenchmarkIncrementalFaultSim/event-4         	 1000000	      2201 ns/op	       0 B/op	       0 allocs/op
BenchmarkTable1-4   	       1	1234567 ns/op	         0.9751 DR-interval-1	         0.4102 DR-twostep-8
--- BENCH: BenchmarkSomething
    some_test.go:10: chatter
PASS
ok  	repro	10.759s
`

func TestParse(t *testing.T) {
	r, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || r.Pkg != "repro" {
		t.Errorf("header = %q/%q/%q", r.Goos, r.Goarch, r.Pkg)
	}
	if !strings.Contains(r.CPU, "Xeon") {
		t.Errorf("cpu = %q", r.CPU)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(r.Benchmarks))
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkFaultSimulation" || b.Iterations != 257012 {
		t.Errorf("benchmark 0 = %+v", b)
	}
	if b.Metrics["ns/op"] != 8952 || b.Metrics["allocs/op"] != 10 {
		t.Errorf("benchmark 0 metrics = %v", b.Metrics)
	}
	// GOMAXPROCS suffix stripped, sub-benchmark path kept.
	if got := r.Benchmarks[1].Name; got != "BenchmarkIncrementalFaultSim/event" {
		t.Errorf("benchmark 1 name = %q", got)
	}
	// Custom b.ReportMetric columns survive.
	if got := r.Benchmarks[2].Metrics["DR-interval-1"]; got != 0.9751 {
		t.Errorf("DR-interval-1 = %v", got)
	}
}

func TestParseSkipsMalformedBenchmarkLines(t *testing.T) {
	r, err := Parse(strings.NewReader("BenchmarkHeaderOnly\nBenchmarkOdd 12 34\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from non-result lines", len(r.Benchmarks))
	}
}

func TestParseRejectsBadMetricValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX 10 abc ns/op\n")); err == nil {
		t.Error("bad metric value accepted")
	}
}

func mkReport(nsOp map[string]float64) *Report {
	r := &Report{}
	for name, ns := range nsOp {
		r.Benchmarks = append(r.Benchmarks, Benchmark{
			Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns},
		})
	}
	return r
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkFaultSimulation": 1000, "BenchmarkOther": 500})
	cur := mkReport(map[string]float64{"BenchmarkFaultSimulation": 1200, "BenchmarkOther": 5000})
	// 20% regression on the gated benchmark is under the 25% ceiling; the
	// 10x regression on the ungated one must not trip the gate.
	text, failed := Compare(cur, base, []string{"BenchmarkFaultSimulation"}, 25)
	if failed {
		t.Errorf("comparison failed within threshold:\n%s", text)
	}
	if !strings.Contains(text, "[gate]") {
		t.Errorf("gated benchmark not marked:\n%s", text)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkFaultSimulation": 1000})
	cur := mkReport(map[string]float64{"BenchmarkFaultSimulation": 1300})
	text, failed := Compare(cur, base, []string{"BenchmarkFaultSimulation"}, 25)
	if !failed {
		t.Errorf("30%% regression passed a 25%% gate:\n%s", text)
	}
	if !strings.Contains(text, "[FAIL]") {
		t.Errorf("failing benchmark not marked:\n%s", text)
	}
}

func TestCompareGatesSubBenchmarks(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkFaultBatchSweep/batched": 400})
	cur := mkReport(map[string]float64{"BenchmarkFaultBatchSweep/batched": 600})
	if _, failed := Compare(cur, base, []string{"BenchmarkFaultBatchSweep"}, 25); !failed {
		t.Error("sub-benchmark regression passed a gate on its parent name")
	}
}

func TestSplitGates(t *testing.T) {
	got := splitGates(" BenchmarkFaultSimulation, BenchmarkFaultBatchSweep ,")
	if len(got) != 2 || got[0] != "BenchmarkFaultSimulation" || got[1] != "BenchmarkFaultBatchSweep" {
		t.Errorf("splitGates = %q", got)
	}
	if got := splitGates(""); got != nil {
		t.Errorf("splitGates(\"\") = %q, want nil", got)
	}
}

func TestCompareCommaSeparatedGates(t *testing.T) {
	base := mkReport(map[string]float64{
		"BenchmarkFaultSimulation":         1000,
		"BenchmarkFaultBatchSweep/batched": 400,
		"BenchmarkFaultBatchSweep/event":   400,
	})
	gates := splitGates("BenchmarkFaultSimulation,BenchmarkFaultBatchSweep")

	// Both gates within threshold: the run passes and both are marked.
	cur := mkReport(map[string]float64{
		"BenchmarkFaultSimulation":         1100,
		"BenchmarkFaultBatchSweep/batched": 410,
		"BenchmarkFaultBatchSweep/event":   390,
	})
	text, failed := Compare(cur, base, gates, 25)
	if failed {
		t.Errorf("multi-gate comparison failed within threshold:\n%s", text)
	}
	if strings.Count(text, "[gate]") != 3 {
		t.Errorf("want all three gated rows marked:\n%s", text)
	}

	// A regression under the second gate alone fails the run.
	cur = mkReport(map[string]float64{
		"BenchmarkFaultSimulation":         1100,
		"BenchmarkFaultBatchSweep/batched": 900,
		"BenchmarkFaultBatchSweep/event":   390,
	})
	text, failed = Compare(cur, base, gates, 25)
	if !failed {
		t.Errorf("regression under second of two gates passed:\n%s", text)
	}
	if !strings.Contains(text, "[FAIL]") {
		t.Errorf("failing row not marked:\n%s", text)
	}
}

func TestCompareMissingGateFails(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkRenamed": 1000})
	cur := mkReport(map[string]float64{"BenchmarkRenamed": 1000})
	text, failed := Compare(cur, base, []string{"BenchmarkFaultSimulation"}, 25)
	if !failed {
		t.Errorf("gate matching no benchmark passed silently:\n%s", text)
	}
}

func TestCompareReportsNewAndGone(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkGone": 1000})
	cur := mkReport(map[string]float64{"BenchmarkNew": 2000})
	text, failed := Compare(cur, base, nil, 25)
	if failed {
		t.Errorf("ungated comparison failed:\n%s", text)
	}
	if !strings.Contains(text, "new") || !strings.Contains(text, "gone") {
		t.Errorf("one-sided benchmarks not listed:\n%s", text)
	}
}
