// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so benchmark runs can be committed,
// diffed, and tracked across PRs (BENCH_PR*.json at the repo root).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . | benchjson -o BENCH_PR3.json
//	benchjson bench.txt
//	benchjson -baseline BENCH_PR3.json -gate BenchmarkFaultSimulation -max-regress 25 bench.txt
//
// The report carries the goos/goarch/pkg/cpu header lines and one entry
// per benchmark result line: the name (GOMAXPROCS suffix stripped), the
// iteration count, and every metric pair — the standard ns/op, B/op,
// allocs/op plus any custom b.ReportMetric columns such as the DR-*
// diagnostic-resolution metrics this harness emits.
//
// With -baseline, the run is additionally compared against a previously
// committed report: every benchmark present in both gets a ns/op delta
// line, and any benchmark named by -gate (comma-separated, matched as an
// exact name or a sub-benchmark prefix) whose ns/op regressed by more
// than -max-regress percent fails the invocation with exit status 1 —
// the CI perf gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full parsed run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var procsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	baseline := flag.String("baseline", "", "compare ns/op against this committed JSON report")
	gate := flag.String("gate", "", "comma-separated benchmark names (or sub-benchmark prefixes) whose regression fails the run")
	maxRegress := flag.Float64("max-regress", 25, "allowed ns/op regression for gated benchmarks, in percent")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	report, err := Parse(in)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in input"))
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
	} else if *baseline == "" {
		// In comparison mode stdout carries the delta table instead, so the
		// JSON report is only emitted when a -o destination names a file.
		os.Stdout.Write(enc)
	}

	if *baseline == "" {
		return
	}
	base, err := loadReport(*baseline)
	if err != nil {
		fatal(err)
	}
	text, failed := Compare(report, base, splitGates(*gate), *maxRegress)
	os.Stdout.WriteString(text)
	if failed {
		fatal(fmt.Errorf("gated benchmark regressed more than %g%% vs %s", *maxRegress, *baseline))
	}
}

// loadReport reads a previously written JSON report from disk.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

// splitGates parses the -gate flag into its non-empty names.
func splitGates(s string) []string {
	var gates []string
	for _, g := range strings.Split(s, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gates = append(gates, g)
		}
	}
	return gates
}

// gated reports whether name is covered by one of the gate entries: an
// exact match, or a sub-benchmark of a gated parent (prefix + "/").
func gated(name string, gates []string) bool {
	for _, g := range gates {
		if name == g || strings.HasPrefix(name, g+"/") {
			return true
		}
	}
	return false
}

// Compare renders a per-benchmark ns/op delta table between the current
// run and a baseline report, and reports whether any gated benchmark
// regressed by more than maxRegress percent. Benchmarks present on only
// one side are listed but never gate; a gate name matching nothing in the
// current run fails, so a renamed benchmark cannot silently skip the gate.
func Compare(cur, base *Report, gates []string, maxRegress float64) (string, bool) {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-50s %14s %14s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	failed := false
	matched := make(map[string]bool)
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		seen[b.Name] = true
		old, ok := baseBy[b.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-50s %14s %14.0f %9s\n", b.Name, "-", b.Metrics["ns/op"], "new")
			continue
		}
		oldNs, newNs := old.Metrics["ns/op"], b.Metrics["ns/op"]
		if oldNs <= 0 {
			fmt.Fprintf(&sb, "%-50s %14.0f %14.0f %9s\n", b.Name, oldNs, newNs, "n/a")
			continue
		}
		delta := 100 * (newNs - oldNs) / oldNs
		mark := ""
		if gated(b.Name, gates) {
			for _, g := range gates {
				if b.Name == g || strings.HasPrefix(b.Name, g+"/") {
					matched[g] = true
				}
			}
			mark = "  [gate]"
			if delta > maxRegress {
				mark = "  [FAIL]"
				failed = true
			}
		}
		fmt.Fprintf(&sb, "%-50s %14.0f %14.0f %+8.1f%%%s\n", b.Name, oldNs, newNs, delta, mark)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(&sb, "%-50s %14.0f %14s %9s\n", b.Name, b.Metrics["ns/op"], "-", "gone")
		}
	}
	for _, g := range gates {
		if !matched[g] {
			fmt.Fprintf(&sb, "gate %q matched no benchmark present in both runs\n", g)
			failed = true
		}
	}
	return sb.String(), failed
}

// Parse reads `go test -bench` output and extracts the header fields and
// every benchmark result line. Non-benchmark lines (test chatter, PASS/ok
// trailers) are ignored, so raw `go test` output can be piped in directly.
func Parse(r io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			report.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseResultLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	return report, sc.Err()
}

// parseResultLine parses one result line of the form
//
//	BenchmarkName-8   1000000   2201 ns/op   0 B/op   0 allocs/op
//
// into its name, iteration count, and metric pairs. Lines that start with
// "Benchmark" but are not results (e.g. a bare sub-benchmark header) are
// skipped rather than rejected.
func parseResultLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{
		Name:       procsSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("benchmark %s: bad metric value %q: %v", b.Name, fields[i], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
