// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so benchmark runs can be committed,
// diffed, and tracked across PRs (BENCH_PR*.json at the repo root).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . | benchjson -o BENCH_PR3.json
//	benchjson bench.txt
//
// The report carries the goos/goarch/pkg/cpu header lines and one entry
// per benchmark result line: the name (GOMAXPROCS suffix stripped), the
// iteration count, and every metric pair — the standard ns/op, B/op,
// allocs/op plus any custom b.ReportMetric columns such as the DR-*
// diagnostic-resolution metrics this harness emits.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full parsed run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var procsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	report, err := Parse(in)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in input"))
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// Parse reads `go test -bench` output and extracts the header fields and
// every benchmark result line. Non-benchmark lines (test chatter, PASS/ok
// trailers) are ignored, so raw `go test` output can be piped in directly.
func Parse(r io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			report.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseResultLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	return report, sc.Err()
}

// parseResultLine parses one result line of the form
//
//	BenchmarkName-8   1000000   2201 ns/op   0 B/op   0 allocs/op
//
// into its name, iteration count, and metric pairs. Lines that start with
// "Benchmark" but are not results (e.g. a bare sub-benchmark header) are
// skipped rather than rejected.
func parseResultLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{
		Name:       procsSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("benchmark %s: bad metric value %q: %v", b.Name, fields[i], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
