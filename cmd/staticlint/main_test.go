package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/lint"
)

// sampleFindings builds a fixed finding set against the real analyzer
// registry, so the golden files exercise real rule IDs.
func sampleFindings(t *testing.T) []analysis.Finding {
	t.Helper()
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range lint.Analyzers() {
		byName[a.Name] = a
	}
	pick := func(name string) *analysis.Analyzer {
		a := byName[name]
		if a == nil {
			t.Fatalf("no analyzer %q registered", name)
		}
		return a
	}
	return []analysis.Finding{
		{
			Analyzer: pick("scratchalias"),
			Position: token.Position{Filename: "internal/sim/batch.go", Line: 42, Column: 7},
			Message:  "res aliases scratch memory valid only until the next RunInto; storing it in h.res lets it outlive the scratch",
		},
		{
			Analyzer: pick("goleak"),
			Position: token.Position{Filename: "internal/shard/worker.go", Line: 84, Column: 3},
			Message:  "goroutine is not joined before the spawning scope returns: Wait on a WaitGroup it Dones, or receive from a channel it closes",
		},
		{
			Analyzer: pick("framecase"),
			Position: token.Position{Filename: "internal/shard/worker.go", Line: 195, Column: 2},
			Message:  "switch on JobKind does not handle JobChain; add the cases or a default clause that owns the remainder",
		},
	}
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden %s: %v (regenerate by saving the got output)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s output drifted from golden file %s\ngot:\n%s\nwant:\n%s", name, path, got, want)
	}
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, sampleFindings(t)); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	golden(t, "findings.json", buf.Bytes())
}

func TestJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty finding set encoded as %q, want []", buf.String())
	}
}

func TestSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, sampleFindings(t), lint.Analyzers()); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	golden(t, "findings.sarif", buf.Bytes())
	validateSARIF(t, buf.Bytes())
}

func TestSARIFEmptyRunValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, nil, lint.Analyzers()); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	validateSARIF(t, buf.Bytes())
}

// validateSARIF checks the output against the SARIF 2.1.0 schema's
// required properties and the internal consistency code-scanning
// consumers rely on: version and $schema, a non-empty runs array,
// tool.driver.name, rules with unique non-empty ids, and results whose
// ruleId/ruleIndex resolve to a declared rule and whose locations
// carry slash-separated URIs and 1-based regions.
func validateSARIF(t *testing.T, data []byte) {
	t.Helper()
	var log map[string]interface{}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not JSON: %v", err)
	}
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Errorf(`version = %q, want "2.1.0"`, v)
	}
	if s, _ := log["$schema"].(string); !strings.Contains(s, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema URI", s)
	}
	runs, ok := log["runs"].([]interface{})
	if !ok || len(runs) == 0 {
		t.Fatalf("runs missing or empty: %T", log["runs"])
	}
	run, ok := runs[0].(map[string]interface{})
	if !ok {
		t.Fatalf("runs[0] is %T, want object", runs[0])
	}
	tool, _ := run["tool"].(map[string]interface{})
	driver, _ := tool["driver"].(map[string]interface{})
	if driver == nil {
		t.Fatal("runs[0].tool.driver missing")
	}
	if name, _ := driver["name"].(string); name == "" {
		t.Error("tool.driver.name missing or empty")
	}
	rules, _ := driver["rules"].([]interface{})
	ruleIDs := make([]string, len(rules))
	seen := make(map[string]bool)
	for i, r := range rules {
		rule, _ := r.(map[string]interface{})
		id, _ := rule["id"].(string)
		if id == "" {
			t.Errorf("rules[%d].id missing or empty", i)
		}
		if seen[id] {
			t.Errorf("duplicate rule id %q", id)
		}
		seen[id] = true
		ruleIDs[i] = id
		if sd, _ := rule["shortDescription"].(map[string]interface{}); sd == nil {
			t.Errorf("rules[%d] (%s) has no shortDescription", i, id)
		}
	}
	results, ok := run["results"].([]interface{})
	if !ok {
		t.Fatalf("runs[0].results is %T, want array (empty runs still carry [])", run["results"])
	}
	for i, r := range results {
		res, _ := r.(map[string]interface{})
		ruleID, _ := res["ruleId"].(string)
		idx, idxOK := res["ruleIndex"].(float64)
		if !idxOK || int(idx) < 0 || int(idx) >= len(ruleIDs) || ruleIDs[int(idx)] != ruleID {
			t.Errorf("results[%d]: ruleId %q / ruleIndex %v do not resolve to a declared rule", i, ruleID, res["ruleIndex"])
		}
		msg, _ := res["message"].(map[string]interface{})
		if text, _ := msg["text"].(string); text == "" {
			t.Errorf("results[%d].message.text missing", i)
		}
		locs, _ := res["locations"].([]interface{})
		if len(locs) == 0 {
			t.Errorf("results[%d].locations empty", i)
			continue
		}
		loc, _ := locs[0].(map[string]interface{})
		phys, _ := loc["physicalLocation"].(map[string]interface{})
		art, _ := phys["artifactLocation"].(map[string]interface{})
		uri, _ := art["uri"].(string)
		if uri == "" || strings.Contains(uri, `\`) {
			t.Errorf("results[%d] artifact URI %q: want non-empty, slash-separated", i, uri)
		}
		region, _ := phys["region"].(map[string]interface{})
		if line, _ := region["startLine"].(float64); line < 1 {
			t.Errorf("results[%d].region.startLine = %v, want >= 1", i, line)
		}
	}
}

func TestListPrintsOneLineDocs(t *testing.T) {
	var out, errOut bytes.Buffer
	if rc := run([]string{"-list"}, &out, &errOut); rc != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", rc, errOut.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if want := len(lint.Analyzers()); len(lines) != want {
		t.Errorf("-list printed %d lines, want %d", len(lines), want)
	}
	for _, a := range lint.Analyzers() {
		found := false
		firstDoc := strings.SplitN(a.Doc, "\n", 2)[0]
		for _, line := range lines {
			if strings.HasPrefix(line, a.Name) && strings.Contains(line, firstDoc) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("-list output has no line for %s with its one-line doc", a.Name)
		}
	}
}

func TestUnknownDisableNameExits2(t *testing.T) {
	var out, errOut bytes.Buffer
	rc := run([]string{"-vet=false", "-disable", "detrand,nosuchcheck", "./..."}, &out, &errOut)
	if rc != 2 {
		t.Fatalf("run(-disable nosuchcheck) = %d, want 2", rc)
	}
	if !strings.Contains(errOut.String(), `unknown analyzer "nosuchcheck"`) {
		t.Errorf("stderr %q does not name the unknown analyzer", errOut.String())
	}
	if strings.Contains(errOut.String(), `"detrand"`) {
		t.Errorf("stderr %q flags the valid name detrand", errOut.String())
	}
}

func TestJSONAndSARIFMutuallyExclusive(t *testing.T) {
	var out, errOut bytes.Buffer
	if rc := run([]string{"-json", "-sarif", "./..."}, &out, &errOut); rc != 2 {
		t.Fatalf("run(-json -sarif) = %d, want 2", rc)
	}
	if !strings.Contains(errOut.String(), "mutually exclusive") {
		t.Errorf("stderr %q does not explain the flag conflict", errOut.String())
	}
}

func TestRuleIDFallsBackToName(t *testing.T) {
	a := &analysis.Analyzer{Name: "adhoc"}
	if got := ruleID(a); got != "adhoc" {
		t.Errorf("ruleID(no ID) = %q, want the name", got)
	}
	a.ID = "SL099"
	if got := ruleID(a); got != "SL099" {
		t.Errorf("ruleID = %q, want SL099", got)
	}
}

func TestDisplayPathRelativizes(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	abs := filepath.Join(cwd, "sub", "file.go")
	if got := displayPath(abs); got != "sub/file.go" {
		t.Errorf("displayPath(%q) = %q, want sub/file.go", abs, got)
	}
	if got := displayPath("already/relative.go"); got != "already/relative.go" {
		t.Errorf("displayPath kept = %q", got)
	}
	outside := filepath.Join(string(filepath.Separator), "elsewhere", "x.go")
	if got := displayPath(outside); got != filepath.ToSlash(outside) {
		t.Errorf("displayPath(%q) = %q, want unchanged", outside, got)
	}
}
