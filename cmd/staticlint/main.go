// Command staticlint is the repository's bundled static analysis
// driver: it runs the standard `go vet` suite and the custom analyzers
// from internal/lint (see `staticlint -list` for the full set) over
// the requested packages.
//
// Usage:
//
//	staticlint [flags] [packages]
//	staticlint ./...
//	staticlint -disable scratchalias ./internal/sim/...
//	staticlint -vet=false -sarif ./... > staticlint.sarif
//
// Findings print go-vet style by default; -json emits a flat JSON
// array and -sarif a SARIF 2.1.0 log on stdout (vet output, which the
// go tool formats its own way, stays on stderr in those modes).
//
// Exit status: 0 when every check is clean, 1 when any analyzer or vet
// pass reported diagnostics, 2 when flag parsing, loading or
// typechecking failed — including unknown analyzer names in -disable,
// so a typo cannot silently re-enable a check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the driver behind main, factored out so tests can exercise
// flag handling and report encoding without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("staticlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runVet   = fs.Bool("vet", true, "also run the standard `go vet` suite")
		disable  = fs.String("disable", "", "comma-separated custom analyzer names to skip")
		list     = fs.Bool("list", false, "list the custom analyzers and exit")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array on stdout")
		sarifOut = fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "staticlint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return 0
	}
	skip := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			skip[name] = true
		}
	}
	var enabled []*analysis.Analyzer
	for _, a := range analyzers {
		if skip[a.Name] {
			delete(skip, a.Name)
			continue
		}
		enabled = append(enabled, a)
	}
	if len(skip) > 0 {
		unknown := make([]string, 0, len(skip))
		for name := range skip {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		for _, name := range unknown {
			fmt.Fprintf(stderr, "staticlint: unknown analyzer %q in -disable\n", name)
		}
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	vetOK := true
	if *runVet {
		// In structured modes stdout carries only the report; vet's
		// free-form output moves to stderr.
		vetStdout := stdout
		if *jsonOut || *sarifOut {
			vetStdout = stderr
		}
		var err error
		vetOK, err = vet(patterns, vetStdout, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "staticlint: running go vet: %v\n", err)
			return 2
		}
	}

	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "staticlint: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, enabled)
	if err != nil {
		fmt.Fprintf(stderr, "staticlint: %v\n", err)
		return 2
	}
	switch {
	case *jsonOut:
		err = writeJSON(stdout, findings)
	case *sarifOut:
		err = writeSARIF(stdout, findings, enabled)
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "staticlint: %v\n", err)
		return 2
	}
	if !vetOK || len(findings) > 0 {
		return 1
	}
	return 0
}

// vet runs the standard analyzer suite via the go tool, streaming its
// report; it returns false when vet found problems and a non-nil error
// only when the tool could not run at all.
func vet(patterns []string, stdout, stderr io.Writer) (bool, error) {
	cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return false, nil
		}
		return false, err
	}
	return true, nil
}
