// Command staticlint is the repository's bundled static analysis
// driver: it runs the standard `go vet` suite and the custom analyzers
// from internal/lint (detrand, scratchalias, panicfmt, noexit,
// paralleltestscratch) over the requested packages.
//
// Usage:
//
//	staticlint [flags] [packages]
//	staticlint ./...
//	staticlint -disable scratchalias ./internal/sim/...
//
// Exit status: 0 when every check is clean, 1 when any analyzer or vet
// pass reported diagnostics, 2 when loading or typechecking failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
	"repro/internal/lint"
)

func main() {
	var (
		runVet  = flag.Bool("vet", true, "also run the standard `go vet` suite")
		disable = flag.String("disable", "", "comma-separated custom analyzer names to skip")
		list    = flag.Bool("list", false, "list the custom analyzers and exit")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-22s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}
	skip := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			skip[name] = true
		}
	}
	var enabled []*analysis.Analyzer
	for _, a := range analyzers {
		if skip[a.Name] {
			delete(skip, a.Name)
			continue
		}
		enabled = append(enabled, a)
	}
	for name := range skip {
		fmt.Fprintf(os.Stderr, "staticlint: unknown analyzer %q in -disable\n", name)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *runVet {
		failed = !vet(patterns)
	}

	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "staticlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, enabled)
	if err != nil {
		fmt.Fprintf(os.Stderr, "staticlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if failed || len(findings) > 0 {
		os.Exit(1)
	}
}

// vet runs the standard analyzer suite via the go tool, streaming its
// report; it returns false when vet found problems.
func vet(patterns []string) bool {
	cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return false
		}
		fmt.Fprintf(os.Stderr, "staticlint: running go vet: %v\n", err)
		os.Exit(2)
	}
	return true
}
