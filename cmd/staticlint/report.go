package main

// report.go renders findings machine-readably. Two formats: a flat
// JSON list for scripting, and SARIF 2.1.0 for code-scanning UIs. Both
// key findings by the analyzers' stable rule IDs (SL001…), which
// survive analyzer renames; the human-readable name rides along.

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// jsonFinding is one finding in -json output.
type jsonFinding struct {
	Rule     string `json:"rule"`
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// writeJSON emits the findings as an indented JSON array (never null:
// an empty run encodes as []).
func writeJSON(w io.Writer, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Rule:     ruleID(f.Analyzer),
			Analyzer: f.Analyzer.Name,
			File:     displayPath(f.Position.Filename),
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 structures, restricted to the properties the format
// requires plus the ones code-scanning consumers read.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// writeSARIF emits one SARIF 2.1.0 run: every enabled analyzer becomes
// a rule (so consumers can show docs for silent rules too), every
// finding a result pointing back to its rule by ID and index.
func writeSARIF(w io.Writer, findings []analysis.Finding, analyzers []*analysis.Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		doc := strings.SplitN(a.Doc, "\n", 2)
		rule := sarifRule{
			ID:               ruleID(a),
			Name:             a.Name,
			ShortDescription: sarifMessage{Text: doc[0]},
		}
		if len(doc) > 1 {
			rule.FullDescription = sarifMessage{Text: strings.TrimSpace(doc[1])}
		}
		rules = append(rules, rule)
		index[rule.ID] = i
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		id := ruleID(f.Analyzer)
		results = append(results, sarifResult{
			RuleID:    id,
			RuleIndex: index[id],
			Level:     "error", // every finding is an invariant violation and fails the build
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       displayPath(f.Position.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   f.Position.Line,
						StartColumn: f.Position.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "staticlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ruleID is the stable identifier for reports; analyzers without an
// assigned ID fall back to their name.
func ruleID(a *analysis.Analyzer) string {
	if a.ID != "" {
		return a.ID
	}
	return a.Name
}

// displayPath renders a finding's file relative to the working
// directory (slash-separated, as SARIF requires) when it lies inside
// it; other paths pass through unchanged.
func displayPath(name string) string {
	if filepath.IsAbs(name) {
		if cwd, err := os.Getwd(); err == nil {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
	}
	return filepath.ToSlash(name)
}
