// Command socdiag runs failing-scan-cell diagnosis on a core-based SOC
// tested through a TestRail: it injects stuck-at faults into one core,
// runs the multi-session scan-BIST flow over the meta scan chains, and
// reports where the candidate cells land.
//
// Usage:
//
//	socdiag -soc 1 -core s13207 -scheme two-step
//	socdiag -soc 2 -chains 8 -groups 8 -core s38417
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/soc"
)

func main() {
	var (
		socNum     = flag.Int("soc", 1, "crafted SOC to test: 1 (six largest, single chain) or 2 (d695 variant)")
		coreName   = flag.String("core", "", "faulty core name (default: the first core)")
		schemeName = flag.String("scheme", "two-step", "partitioning scheme: two-step|random|interval|fixed")
		groups     = flag.Int("groups", 0, "groups per partition (default: 32 for SOC1, 8 for SOC2)")
		partitions = flag.Int("partitions", 8, "number of partitions")
		patterns   = flag.Int("patterns", 128, "pseudorandom patterns per BIST session")
		chains     = flag.Int("chains", 0, "meta scan chains (default: 1 for SOC1, 8 for SOC2)")
		faults     = flag.Int("faults", 500, "stuck-at faults to sample in the faulty core")
		drcCheck   = flag.Bool("drc", false, "run the static design-rule checker on every core and the TAM before simulating")
		seed       = flag.Int64("seed", 1, "fault sampling seed")
		workers    = flag.Int("workers", 0, "goroutines for the fault sweep (0 = all CPUs, 1 = serial; results are identical)")
		lanes      = flag.Int("lanes", 0, "fault lanes per batch, 1-256 (0 = engine default 256; above 64 engages the wide-word kernel)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file after the run")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the sweep (0 = none); on expiry the partial study is reported")
		cacheMB    = flag.Int64("cachemb", 0, "artifact-cache budget in MiB (0 = unbounded)")
		cacheDir   = flag.String("cachedir", "", "persist build artifacts under this directory and reuse them across runs (warm start)")
		preset     = flag.String("preset", "", "SOC preset name (soc1|soc2|soc1m|socmini); overrides -soc")
		connect    = flag.String("connect", "", "comma-separated sharddiag worker addresses (host:port, or unix:/path); shard the sweep across them instead of running in-process")
		shards     = flag.Int("shards", 0, "shards to split the fault list into when -connect is set (0 = 4 per worker)")
	)
	flag.Parse()

	if *groups < 0 {
		usageError(fmt.Errorf("-groups must not be negative, got %d", *groups))
	}
	if *partitions < 1 {
		usageError(fmt.Errorf("-partitions must be at least 1, got %d", *partitions))
	}
	if *patterns < 1 {
		usageError(fmt.Errorf("-patterns must be at least 1, got %d", *patterns))
	}
	if *chains < 0 {
		usageError(fmt.Errorf("-chains must not be negative, got %d", *chains))
	}
	if *faults < 1 {
		usageError(fmt.Errorf("-faults must be at least 1, got %d", *faults))
	}
	if *workers < 0 {
		usageError(fmt.Errorf("-workers must be non-negative, got %d", *workers))
	}
	if *lanes < 0 || *lanes > sim.MaxBatchLanes {
		usageError(fmt.Errorf("-lanes %d out of range 0..%d", *lanes, sim.MaxBatchLanes))
	}
	if *timeout < 0 {
		usageError(fmt.Errorf("-timeout must be non-negative, got %v", *timeout))
	}
	if err := validateCacheMB(*cacheMB); err != nil {
		usageError(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	presetName := *preset
	if presetName == "" {
		switch *socNum {
		case 1:
			presetName = "soc1"
		case 2:
			presetName = "soc2"
		default:
			fatal(fmt.Errorf("unknown SOC %d", *socNum))
		}
	}
	s, err := soc.Preset(presetName)
	if err != nil {
		fatal(err)
	}
	// Per-preset defaults: the paper's SOC1 runs 32 groups on a single
	// chain, SOC2 8 groups on 8 chains; other presets get the SOC2 group
	// count on a single chain.
	if *groups == 0 {
		if presetName == "soc1" {
			*groups = 32
		} else {
			*groups = 8
		}
	}
	if *chains == 0 {
		if presetName == "soc2" {
			*chains = 8
		} else {
			*chains = 1
		}
	}

	faultyCore := 0
	if *coreName != "" {
		i, ok := s.CoreByName(*coreName)
		if !ok {
			fatal(fmt.Errorf("SOC %s has no core %q", s.Name, *coreName))
		}
		faultyCore = i
	}
	scheme, err := schemeByName(*schemeName)
	if err != nil {
		fatal(err)
	}
	if *drcCheck {
		reportDRC(s.Name, drc.CheckSOC(s, *chains))
	}

	opts := core.Options{
		Scheme:     scheme,
		Groups:     *groups,
		Partitions: *partitions,
		Patterns:   *patterns,
		Chains:     *chains,
		Workers:    *workers,
		Lanes:      *lanes,
		StrictDRC:  *drcCheck,
		CacheDir:   *cacheDir,
	}
	if *cacheMB > 0 {
		opts.Cache = pipeline.NewCacheWithBudget(pipeline.Budget{MaxBytes: *cacheMB << 20})
	}
	b, err := core.NewSOCBench(s, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("SOC:      %s, %d cores, %d scan cells, %d meta chain(s)\n",
		s.Name, s.NumCores(), s.NumCells(), *chains)
	for i, c := range s.Cores {
		lo, hi := s.CellRange(i)
		marker := " "
		if i == faultyCore {
			marker = "*"
		}
		fmt.Printf("  %s core %-9s cells [%5d, %5d)\n", marker, c.Name, lo, hi)
	}
	fmt.Printf("plan:     %s, %d groups x %d partitions, %d patterns/session\n",
		scheme.Name(), *groups, *partitions, *patterns)

	// A -timeout deadline and Ctrl-C both cancel the sweep at batch
	// granularity: in-flight batches drain and the contiguous prefix of
	// diagnosed faults is reported as a partial study.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	sample := sim.SampleFaults(b.CoreFaults(faultyCore), *faults, *seed)
	var study *core.Study
	var runErr error
	if *connect != "" {
		// Sharded run: per-fault verdicts and study aggregates are merged
		// slot-major from the workers' deltas, bit-identical to the
		// in-process sweep, so stdout below does not depend on -connect.
		conns, err := shard.DialAll(ctx, strings.Split(*connect, ","))
		if err != nil {
			fatal(err)
		}
		defer func() {
			for _, wc := range conns {
				wc.Close()
			}
		}()
		co := &shard.Coordinator{Conns: conns, Shards: *shards}
		cc := s.Cores[faultyCore].Circuit
		study, runErr = co.RunSOCCore(ctx, shard.SOCRef(presetName, s), faultyCore, opts, sample,
			shard.StuckAtCosts(cc, sample), nil)
	} else {
		study, runErr = b.RunCoreContext(ctx, faultyCore, sample)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "socdiag: sweep interrupted (%v): diagnosed %d of %d scheduled faults; reporting the partial study\n",
			runErr, study.Completeness.Observed, study.Completeness.Scheduled)
	}
	fmt.Printf("\nfaults:   %d sampled in %s, %d diagnosed, %d undetected\n",
		len(sample), s.Cores[faultyCore].Name, study.Diagnosed, study.Undetected)
	if !study.Completeness.Complete() {
		fmt.Printf("partial:  %d of %d faults observed (%.0f%%) before the deadline\n",
			study.Completeness.Observed, study.Completeness.Scheduled, 100*study.Completeness.Fraction())
	}
	fmt.Printf("DR:       %.4f without pruning\n", study.Full.Value())
	fmt.Printf("DR:       %.4f with pruning\n", study.Pruned.Value())
	if k := study.PartitionsToReachDR(0.5); k > 0 {
		fmt.Printf("DR<=0.5 reached after %d partition(s)\n", k)
	} else {
		fmt.Printf("DR<=0.5 not reached within %d partitions\n", *partitions)
	}
	// Cache traffic goes to stderr so warm and cold runs keep identical
	// stdout.
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "socdiag: %s\n", b.Opts.Cache.Stats())
	}
}

// maxCacheMB rejects budgets no machine this tool targets could hold
// (1 TiB): such values are typos, not configurations.
const maxCacheMB = 1 << 20

func validateCacheMB(mb int64) error {
	if mb < 0 {
		return fmt.Errorf("-cachemb must be non-negative, got %d", mb)
	}
	if mb > maxCacheMB {
		return fmt.Errorf("-cachemb must be at most %d (1 TiB), got %d", int64(maxCacheMB), mb)
	}
	return nil
}

func schemeByName(name string) (partition.Scheme, error) {
	switch name {
	case "two-step":
		return partition.TwoStep{}, nil
	case "random", "random-selection":
		return partition.RandomSelection{}, nil
	case "interval":
		return partition.Interval{}, nil
	case "fixed", "fixed-interval":
		return partition.FixedInterval{}, nil
	}
	return nil, fmt.Errorf("unknown scheme %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socdiag:", err)
	os.Exit(1)
}

// reportDRC prints the design-rule verdict. On violations it lists every
// hit and exits with status 2: simulating a rule-breaking SOC would
// produce corrupt signatures, not diagnoses.
func reportDRC(name string, vs []drc.Violation) {
	if len(vs) == 0 {
		fmt.Printf("drc:      %s clean\n", name)
		return
	}
	fmt.Fprintf(os.Stderr, "socdiag: drc: %s: %d violation(s)\n", name, len(vs))
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "  %s\n", v)
	}
	os.Exit(2)
}

// writeMemProfile snapshots the heap after a GC so the profile reflects
// retained memory, not transient garbage. A no-op for an empty path.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "socdiag:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "socdiag:", err)
	}
}

// usageError reports a bad flag combination: the error, then the flag
// summary, then a non-zero exit (2, matching flag's own parse failures).
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "socdiag:", err)
	flag.Usage()
	os.Exit(2)
}
