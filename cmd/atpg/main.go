// Command atpg runs deterministic (PODEM) test generation over a circuit's
// stuck-at faults and contrasts the achievable coverage ceiling with the
// coverage the pseudorandom BIST pattern set reaches — the analysis that
// tells you whether undetected faults are a pattern-count problem or
// genuine redundancy.
//
// Usage:
//
//	atpg -circuit s953
//	atpg -circuit s5378 -faults 300 -patterns 256
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/benchgen"
	"repro/internal/bist"
	"repro/internal/circuit"
	"repro/internal/lfsr"
	"repro/internal/sim"
)

func main() {
	var (
		name      = flag.String("circuit", "s953", "built-in benchmark profile")
		benchPath = flag.String("bench", "", "path to a .bench netlist (overrides -circuit)")
		faults    = flag.Int("faults", 500, "stuck-at faults to sample")
		seed      = flag.Int64("seed", 1, "fault sampling seed")
		patterns  = flag.Int("patterns", 128, "pseudorandom patterns for the coverage comparison")
		limit     = flag.Int("limit", 2000, "PODEM backtrack limit per fault")
		verbose   = flag.Bool("verbose", false, "print each fault's outcome")
	)
	flag.Parse()

	if *faults < 1 {
		usageError(fmt.Errorf("-faults must be at least 1, got %d", *faults))
	}
	if *patterns < 1 {
		usageError(fmt.Errorf("-patterns must be at least 1, got %d", *patterns))
	}
	if *limit < 1 {
		usageError(fmt.Errorf("-limit must be at least 1, got %d", *limit))
	}

	var (
		c   *circuit.Circuit
		err error
	)
	if *benchPath != "" {
		c, err = bench.ParseFile(*benchPath)
	} else {
		p, ok := benchgen.ProfileByName(*name)
		if !ok {
			usageError(fmt.Errorf("unknown circuit %q", *name))
		}
		c, err = benchgen.Generate(p)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit: %s\n", c.Stats())

	sample := sim.SampleFaults(sim.CollapseFaults(c, sim.FullFaultList(c)), *faults, *seed)

	// PODEM ceiling.
	g := atpg.New(c)
	g.BacktrackLimit = *limit
	detected, untestable, aborted, careBits := 0, 0, 0, 0
	for _, f := range sample {
		test, outcome := g.Generate(f)
		if *verbose {
			fmt.Printf("  %-28s %s\n", f.Describe(c), outcome)
		}
		switch outcome {
		case atpg.Detected:
			detected++
			careBits += test.AssignedBits()
		case atpg.Untestable:
			untestable++
		case atpg.Aborted:
			aborted++
		}
	}
	fmt.Printf("\nPODEM over %d sampled faults (backtrack limit %d):\n", len(sample), *limit)
	fmt.Printf("  testable:   %d (%.1f%%)\n", detected, pct(detected, len(sample)))
	fmt.Printf("  untestable: %d (%.1f%%)  — redundant logic\n", untestable, pct(untestable, len(sample)))
	fmt.Printf("  aborted:    %d (%.1f%%)\n", aborted, pct(aborted, len(sample)))
	if detected > 0 {
		total := c.NumInputs() + c.NumDFFs()
		fmt.Printf("  average care bits per test: %.1f of %d\n", float64(careBits)/float64(detected), total)
	}

	// Pseudorandom coverage.
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), *patterns)
	fs := sim.NewFaultSim(c, blocks)
	cov := sim.MeasureCoverage(fs, sample)
	fmt.Printf("\npseudorandom BIST patterns: %s\n", cov)
	for _, p := range []int{16, 32, 64, *patterns} {
		if p <= *patterns {
			fmt.Printf("  after %4d patterns: %.1f%%\n", p, 100*cov.CurveAt(p))
		}
	}
	if detected > 0 {
		fmt.Printf("\nrandom-pattern coverage reaches %.1f%% of the PODEM-proven ceiling\n",
			100*float64(cov.Detected)/float64(detected+aborted))
	}
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atpg:", err)
	os.Exit(1)
}

// usageError reports a bad flag combination: the error, then the flag
// reference, then exit status 2 (the conventional usage-error code).
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "atpg:", err)
	flag.Usage()
	os.Exit(2)
}
