// Command benchgen generates the synthetic ISCAS-89-style benchmark
// circuits used throughout this repository and writes them in .bench
// format.
//
// Usage:
//
//	benchgen -list
//	benchgen -circuit s953 -o s953.bench
//	benchgen -circuit s38584 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/benchgen"
	"repro/internal/logic"
	"repro/internal/verilog"
)

func main() {
	var (
		name   = flag.String("circuit", "", "profile to generate")
		out    = flag.String("o", "", "output .bench path (default: stdout)")
		list   = flag.Bool("list", false, "list available profiles")
		stats  = flag.Bool("stats", false, "print structural statistics instead of the netlist")
		seed   = flag.Int64("seed", 0, "override the generator seed (0 = profile default)")
		scale  = flag.Int("scale", 1, "multiply the profile's inputs/outputs/FFs/gates by this factor (1 = stock profile)")
		format = flag.String("format", "bench", "netlist format: bench|verilog")
	)
	flag.Parse()

	// Validate flags before any generation work so a typo fails fast.
	if *format != "bench" && *format != "verilog" {
		usageError(fmt.Errorf("unknown format %q (expected bench|verilog)", *format))
	}
	if *scale < 1 {
		usageError(fmt.Errorf("-scale must be at least 1, got %d", *scale))
	}

	if *list {
		fmt.Printf("%-9s %7s %7s %7s %8s\n", "name", "inputs", "outputs", "FFs", "gates")
		for _, p := range benchgen.Profiles() {
			fmt.Printf("%-9s %7d %7d %7d %8d\n", p.Name, p.Inputs, p.Outputs, p.DFFs, p.Gates)
		}
		return
	}
	if *name == "" {
		usageError(fmt.Errorf("missing -circuit (or use -list)"))
	}
	p, ok := benchgen.ProfileByName(*name)
	if !ok {
		usageError(fmt.Errorf("unknown profile %q", *name))
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	p = p.Scale(*scale)
	c, err := benchgen.Generate(p)
	if err != nil {
		fatal(err)
	}
	if *stats {
		s := c.Stats()
		fmt.Println(s)
		for _, op := range []logic.Op{logic.OpNand, logic.OpNor, logic.OpAnd, logic.OpOr,
			logic.OpNot, logic.OpBuf, logic.OpXor, logic.OpXnor} {
			if n := s.ByOp[op]; n > 0 {
				fmt.Printf("  %-6s %6d\n", op, n)
			}
		}
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "bench":
		if err := bench.Write(w, c); err != nil {
			fatal(err)
		}
	case "verilog":
		if err := verilog.Write(w, c); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}

// usageError reports a bad flag combination: the error, then the flag
// reference, then exit status 2 (the conventional usage-error code).
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	flag.Usage()
	os.Exit(2)
}
