// Command benchgen generates the synthetic ISCAS-89-style benchmark
// circuits used throughout this repository and writes them in .bench
// format.
//
// Usage:
//
//	benchgen -list
//	benchgen -circuit s953 -o s953.bench
//	benchgen -circuit s38584 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/benchgen"
	"repro/internal/logic"
	"repro/internal/verilog"
)

func main() {
	var (
		name   = flag.String("circuit", "", "profile to generate")
		out    = flag.String("o", "", "output .bench path (default: stdout)")
		list   = flag.Bool("list", false, "list available profiles")
		stats  = flag.Bool("stats", false, "print structural statistics instead of the netlist")
		seed   = flag.Int64("seed", 0, "override the generator seed (0 = profile default)")
		scale  = flag.Int("scale", 1, "multiply the profile's inputs/outputs/FFs/gates by this factor (1 = stock profile)")
		format = flag.String("format", "bench", "netlist format: bench|verilog")
		preset = flag.String("preset", "", "SOC preset (soc1|soc2|soc1m|socmini): -stats prints its footprint, -core emits one core's netlist")
		core   = flag.String("core", "", "with -preset: base profile name of the core to emit")
	)
	flag.Parse()

	// Validate flags before any generation work so a typo fails fast.
	if *format != "bench" && *format != "verilog" {
		usageError(fmt.Errorf("unknown format %q (expected bench|verilog)", *format))
	}
	if *scale < 1 {
		usageError(fmt.Errorf("-scale must be at least 1, got %d", *scale))
	}

	if *list {
		fmt.Printf("%-9s %7s %7s %7s %8s\n", "name", "inputs", "outputs", "FFs", "gates")
		for _, p := range benchgen.Profiles() {
			fmt.Printf("%-9s %7d %7d %7d %8d\n", p.Name, p.Inputs, p.Outputs, p.DFFs, p.Gates)
		}
		fmt.Printf("\n%-9s %6s %6s %9s %10s  %s\n", "preset", "cores", "scale", "FFs", "gates", "bases")
		for _, p := range benchgen.SOCPresets() {
			f, err := p.Footprint()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-9s %6d %6d %9d %10d  %v\n", p.Name, f.Cores, p.Scale, f.DFFs, f.Gates, p.Bases)
		}
		return
	}
	if *preset != "" {
		emitPreset(*preset, *core, *name, *seed, *scale, *stats, *out, *format)
		return
	}
	if *name == "" {
		usageError(fmt.Errorf("missing -circuit (or use -list)"))
	}
	p, ok := benchgen.ProfileByName(*name)
	if !ok {
		usageError(fmt.Errorf("unknown profile %q", *name))
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	p = p.Scale(*scale)
	c, err := benchgen.Generate(p)
	if err != nil {
		fatal(err)
	}
	if *stats {
		s := c.Stats()
		fmt.Println(s)
		for _, op := range []logic.Op{logic.OpNand, logic.OpNor, logic.OpAnd, logic.OpOr,
			logic.OpNot, logic.OpBuf, logic.OpXor, logic.OpXnor} {
			if n := s.ByOp[op]; n > 0 {
				fmt.Printf("  %-6s %6d\n", op, n)
			}
		}
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "bench":
		if err := bench.Write(w, c); err != nil {
			fatal(err)
		}
	case "verilog":
		if err := verilog.Write(w, c); err != nil {
			fatal(err)
		}
	}
}

// emitPreset handles the -preset modes: footprint report (-stats) or
// one core's netlist (-core). Presets are fixed recipes — the shard
// runtime identifies devices by preset name plus content fingerprint —
// so the per-profile -seed and -scale knobs are rejected here.
func emitPreset(presetName, coreName, circuitName string, seed int64, scale int, stats bool, out, format string) {
	if circuitName != "" {
		usageError(fmt.Errorf("-preset excludes -circuit"))
	}
	if seed != 0 || scale != 1 {
		usageError(fmt.Errorf("-preset recipes are fixed; -seed and -scale do not apply"))
	}
	p, ok := benchgen.SOCPresetByName(presetName)
	if !ok {
		names := make([]string, 0, 4)
		for _, q := range benchgen.SOCPresets() {
			names = append(names, q.Name)
		}
		usageError(fmt.Errorf("unknown preset %q (try one of %v)", presetName, names))
	}
	profs, err := p.Profiles()
	if err != nil {
		fatal(err)
	}
	if stats {
		f, err := p.Footprint()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d cores x%d, %d inputs, %d outputs, %d FFs, %d gates\n",
			p.Name, f.Cores, p.Scale, f.Inputs, f.Outputs, f.DFFs, f.Gates)
		for _, prof := range profs {
			fmt.Printf("  %-12s %6d FFs %8d gates\n", prof.Name, prof.DFFs, prof.Gates)
		}
		return
	}
	if coreName == "" {
		usageError(fmt.Errorf("with -preset, use -stats for the footprint or -core <base> to emit one core"))
	}
	var chosen *benchgen.Profile
	for i, base := range p.Bases {
		if base == coreName {
			chosen = &profs[i]
			break
		}
	}
	if chosen == nil {
		usageError(fmt.Errorf("preset %s has no core %q (bases: %v)", p.Name, coreName, p.Bases))
	}
	c, err := benchgen.Generate(*chosen)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "bench":
		err = bench.Write(w, c)
	case "verilog":
		err = verilog.Write(w, c)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}

// usageError reports a bad flag combination: the error, then the flag
// reference, then exit status 2 (the conventional usage-error code).
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	flag.Usage()
	os.Exit(2)
}
