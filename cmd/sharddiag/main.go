// Command sharddiag runs the coordinator/worker runtime that shards a
// diagnosis sweep across processes. A worker serves shard jobs over the
// length-prefixed binary protocol; a coordinator splits a fault list
// into cost-balanced shards, fans them out, and merges the verdict
// deltas into exactly the study a single-process sweep would produce.
//
// Usage:
//
//	sharddiag serve -listen 127.0.0.1:9731 -cachedir /shared/artifacts
//	sharddiag coordinate -connect host1:9731,host2:9731 -circuit s13207
//	sharddiag coordinate -connect unix:/tmp/w.sock -soc socmini -core s953
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/retry"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/soc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "coordinate":
		coordinate(os.Args[2:])
	case "-h", "-help", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sharddiag: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sharddiag <subcommand> [flags]

subcommands:
  serve        run a shard worker: accept jobs, execute them, stream results
  coordinate   split a sweep into shards and dispatch them to workers

run "sharddiag <subcommand> -h" for the subcommand's flags
`)
	os.Exit(2)
}

// maxCacheMB rejects budgets no machine this tool targets could hold
// (1 TiB): such values are typos, not configurations.
const maxCacheMB = 1 << 20

func validateCacheMB(mb int64) error {
	if mb < 0 {
		return fmt.Errorf("-cachemb must be non-negative, got %d", mb)
	}
	if mb > maxCacheMB {
		return fmt.Errorf("-cachemb must be at most %d (1 TiB), got %d", int64(maxCacheMB), mb)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sharddiag:", err)
	os.Exit(1)
}

// usageError reports a bad flag combination: the error, the
// subcommand's flag reference, then exit status 2 (the conventional
// usage-error code, matching the other CLIs).
func usageError(fs *flag.FlagSet, err error) {
	fmt.Fprintln(os.Stderr, "sharddiag:", err)
	fs.Usage()
	os.Exit(2)
}

// listen opens the worker's accept socket: "host:port" for TCP, or
// "unix:/path/to.sock" for a Unix socket (stale socket files from a
// previous run are removed first).
func listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		os.Remove(path)
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

func serve(args []string) {
	fs := flag.NewFlagSet("sharddiag serve", flag.ExitOnError)
	var (
		listenAddr = fs.String("listen", "127.0.0.1:9731", "address to accept coordinator connections on (host:port, or unix:/path/to.sock)")
		node       = fs.String("node", "", "worker name reported to coordinators (default: hostname)")
		workers    = fs.Int("workers", 0, "goroutines per shard's local sweep (0 = all CPUs)")
		cacheDir   = fs.String("cachedir", "", "shared artifact-store directory; workers fetch-or-build content-addressed artifacts here")
		cacheMB    = fs.Int64("cachemb", 0, "in-memory artifact-cache budget in MiB (0 = unbounded)")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
		verbose    = fs.Bool("v", false, "log each connection, shard, and timing to stderr")
	)
	fs.Parse(args)
	if *workers < 0 {
		usageError(fs, fmt.Errorf("-workers must be non-negative, got %d", *workers))
	}
	if err := validateCacheMB(*cacheMB); err != nil {
		usageError(fs, err)
	}

	cfg := shard.ServerConfig{Node: *node, Workers: *workers, CacheDir: *cacheDir}
	if *cacheMB > 0 {
		cfg.Cache = pipeline.NewCacheWithBudget(pipeline.Budget{MaxBytes: *cacheMB << 20})
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sharddiag: %s %s\n",
				time.Now().Format("15:04:05.000"), fmt.Sprintf(format, args...))
		}
	}

	if *pprofAddr != "" {
		// The default mux already carries the pprof handlers via the
		// side-effect import; failures are fatal so a mistyped address
		// doesn't silently run without profiling.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fatal(fmt.Errorf("pprof listener: %w", err))
			}
		}()
		fmt.Fprintf(os.Stderr, "sharddiag: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	ln, err := listen(*listenAddr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sharddiag: worker listening on %s (workers=%d cachedir=%q)\n",
		ln.Addr(), *workers, *cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := shard.NewServer(cfg).Serve(ctx, ln); err != nil && err != context.Canceled {
		fatal(err)
	}
}

func coordinate(args []string) {
	fs := flag.NewFlagSet("sharddiag coordinate", flag.ExitOnError)
	var (
		connect      = fs.String("connect", "", "comma-separated worker addresses (host:port, or unix:/path/to.sock)")
		shards       = fs.Int("shards", 0, "shards to split the fault list into (0 = 4 per worker)")
		shardTimeout = fs.Duration("shard-timeout", 0, "per-shard round-trip deadline (0 = none); timed-out shards are retried elsewhere")
		retries      = fs.Int("retries", 0, "dispatch attempts per shard on transient failure (0 = default 3)")
		circuitName  = fs.String("circuit", "", "built-in benchmark profile to diagnose")
		benchPath    = fs.String("bench", "", "path to an ISCAS-89 .bench netlist (must be readable by every worker too)")
		socPreset    = fs.String("soc", "", "SOC preset to diagnose instead of a circuit: soc1|soc2|soc1m|socmini")
		coreName     = fs.String("core", "", "faulty core name for -soc (default: the first core)")
		schemeName   = fs.String("scheme", "two-step", "partitioning scheme: two-step|random|interval|fixed")
		groups       = fs.Int("groups", 4, "groups per partition")
		partitions   = fs.Int("partitions", 8, "number of partitions")
		patterns     = fs.Int("patterns", 128, "pseudorandom patterns per BIST session")
		chains       = fs.Int("chains", 1, "number of balanced scan chains")
		faults       = fs.Int("faults", 500, "stuck-at faults to sample")
		seed         = fs.Int64("seed", 1, "fault sampling seed")
		lanes        = fs.Int("lanes", 0, "fault lanes per batch on the workers, 1-256 (0 = engine default)")
		timeout      = fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); on expiry the partial study is reported")
		verbose      = fs.Bool("v", false, "log shard dispatch, worker progress, and connection events to stderr")
	)
	fs.Parse(args)
	if *connect == "" {
		usageError(fs, fmt.Errorf("missing -connect: need at least one worker address"))
	}
	if *circuitName == "" && *benchPath == "" && *socPreset == "" {
		usageError(fs, fmt.Errorf("nothing to diagnose: set -circuit, -bench, or -soc"))
	}
	if *socPreset != "" && (*circuitName != "" || *benchPath != "") {
		usageError(fs, fmt.Errorf("-soc excludes -circuit and -bench"))
	}
	if *groups < 1 || *partitions < 1 || *patterns < 1 || *chains < 1 {
		usageError(fs, fmt.Errorf("-groups, -partitions, -patterns, and -chains must all be at least 1"))
	}
	if *faults < 1 {
		usageError(fs, fmt.Errorf("-faults must be at least 1, got %d", *faults))
	}
	if *lanes < 0 || *lanes > sim.MaxBatchLanes {
		usageError(fs, fmt.Errorf("-lanes %d out of range 0..%d", *lanes, sim.MaxBatchLanes))
	}
	scheme, err := schemeByName(*schemeName)
	if err != nil {
		usageError(fs, err)
	}
	opts := core.Options{
		Scheme:     scheme,
		Groups:     *groups,
		Partitions: *partitions,
		Patterns:   *patterns,
		Chains:     *chains,
		Lanes:      *lanes,
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	conns, err := shard.DialAll(ctx, strings.Split(*connect, ","))
	if err != nil {
		fatal(err)
	}
	defer func() {
		for _, wc := range conns {
			wc.Close()
		}
	}()
	nshards := *shards
	if nshards == 0 {
		nshards = shard.DefaultShards(len(conns))
	}
	co := &shard.Coordinator{
		Conns:        conns,
		Shards:       nshards,
		ShardTimeout: *shardTimeout,
		Retry:        retry.Policy{MaxAttempts: *retries},
	}
	if *verbose {
		co.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sharddiag: "+format+"\n", args...)
		}
		for _, wc := range conns {
			h := wc.Hello()
			fmt.Fprintf(os.Stderr, "sharddiag: worker %s: pid %d, %d workers, cachedir %q\n",
				wc.Node(), h.Pid, h.Workers, h.CacheDir)
		}
	}

	var (
		study  *core.Study
		runErr error
		label  string
		total  int
	)
	if *socPreset != "" {
		s, err := soc.Preset(*socPreset)
		if err != nil {
			fatal(err)
		}
		faultyCore := 0
		if *coreName != "" {
			i, ok := s.CoreByName(*coreName)
			if !ok {
				fatal(fmt.Errorf("SOC %s has no core %q", s.Name, *coreName))
			}
			faultyCore = i
		}
		cc := s.Cores[faultyCore].Circuit
		sample := sim.SampleFaults(sim.CollapseFaults(cc, sim.FullFaultList(cc)), *faults, *seed)
		total = len(sample)
		label = fmt.Sprintf("%s core %s", s.Name, s.Cores[faultyCore].Name)
		fmt.Printf("target:   %s (%d cores, %d scan cells), faulty core %s\n",
			s.Name, s.NumCores(), s.NumCells(), s.Cores[faultyCore].Name)
		study, runErr = co.RunSOCCore(ctx, shard.SOCRef(*socPreset, s), faultyCore, opts, sample,
			shard.StuckAtCosts(cc, sample), nil)
	} else {
		c, err := loadCircuit(*benchPath, *circuitName)
		if err != nil {
			fatal(err)
		}
		sample := sim.SampleFaults(sim.CollapseFaults(c, sim.FullFaultList(c)), *faults, *seed)
		total = len(sample)
		label = c.Name
		fmt.Printf("target:   %s\n", c.Stats())
		ref := shard.ProfileRef(*circuitName, 0, 1, c)
		if *benchPath != "" {
			ref = shard.BenchFileRef(*benchPath, c)
		}
		study, runErr = co.RunCircuit(ctx, ref, opts, sample, shard.StuckAtCosts(c, sample), nil)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "sharddiag: run degraded (%v): diagnosed %d of %d scheduled faults; reporting the partial study\n",
			runErr, study.Completeness.Observed, study.Completeness.Scheduled)
	}
	fmt.Printf("plan:     %s, %d groups x %d partitions, %d patterns/session, %d chains\n",
		scheme.Name(), *groups, *partitions, *patterns, *chains)
	fmt.Printf("workers:  %d connection(s), %d shard(s)\n", len(conns), co.Shards)
	fmt.Printf("\nfaults:   %d sampled in %s, %d diagnosed, %d undetected\n",
		total, label, study.Diagnosed, study.Undetected)
	if !study.Completeness.Complete() {
		fmt.Printf("partial:  %d of %d faults observed (%.0f%%)\n",
			study.Completeness.Observed, study.Completeness.Scheduled, 100*study.Completeness.Fraction())
	}
	fmt.Printf("DR:       %.4f without pruning\n", study.Full.Value())
	fmt.Printf("DR:       %.4f with pruning\n", study.Pruned.Value())
	if runErr != nil {
		os.Exit(1)
	}
}

func loadCircuit(path, name string) (*circuit.Circuit, error) {
	if path != "" {
		return bench.ParseFile(path)
	}
	p, ok := benchgen.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown built-in circuit %q", name)
	}
	return benchgen.Generate(p)
}

func schemeByName(name string) (partition.Scheme, error) {
	switch name {
	case "two-step":
		return partition.TwoStep{}, nil
	case "random", "random-selection":
		return partition.RandomSelection{}, nil
	case "interval":
		return partition.Interval{}, nil
	case "fixed", "fixed-interval":
		return partition.FixedInterval{}, nil
	}
	return nil, fmt.Errorf("unknown scheme %q", name)
}
