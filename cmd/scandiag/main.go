// Command scandiag runs partition-based failing-scan-cell diagnosis on a
// full-scan circuit: it injects sampled stuck-at faults, runs the
// multi-session scan-BIST flow under the chosen partitioning scheme, and
// reports per-fault candidates and the aggregate diagnostic resolution.
//
// Usage:
//
//	scandiag -circuit s953 -scheme two-step -groups 4 -partitions 8
//	scandiag -bench mydesign.bench -scheme random -faults 100 -verbose
//	scandiag -circuit s1423 -intermittent 0.3 -flip 0.02 -abort 0.02 -retries 8 -vote 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
	"repro/internal/benchgen"
	"repro/internal/bist"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/noise"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/scan"
	"repro/internal/shard"
	"repro/internal/sim"
)

func main() {
	var (
		name         = flag.String("circuit", "s953", "built-in benchmark profile to generate")
		benchPath    = flag.String("bench", "", "path to an ISCAS-89 .bench netlist (overrides -circuit)")
		schemeName   = flag.String("scheme", "two-step", "partitioning scheme: two-step|random|interval|fixed")
		groups       = flag.Int("groups", 4, "groups per partition")
		partitions   = flag.Int("partitions", 8, "number of partitions")
		patterns     = flag.Int("patterns", 128, "pseudorandom patterns per BIST session")
		faults       = flag.Int("faults", 500, "stuck-at faults to sample")
		seed         = flag.Int64("seed", 1, "fault sampling seed")
		workers      = flag.Int("workers", 0, "goroutines for the fault sweep (0 = all CPUs, 1 = serial; results are identical)")
		lanes        = flag.Int("lanes", 0, "fault lanes per batch, 1-256 (0 = engine default 256; above 64 engages the wide-word kernel)")
		chains       = flag.Int("chains", 1, "number of balanced scan chains")
		order        = flag.String("order", "natural", "scan order: natural|random|reverse")
		ideal        = flag.Bool("ideal", false, "bypass the MISR (alias-free compaction)")
		drcCheck     = flag.Bool("drc", false, "run the static design-rule checker on the netlist and refuse to simulate on violations")
		verbose      = flag.Bool("verbose", false, "print each fault's candidate set")
		intermittent = flag.Float64("intermittent", 1, "probability the fault is active on a given pattern (1 = deterministic fault)")
		flip         = flag.Float64("flip", 0, "probability the tester flips a session's pass/fail verdict")
		abort        = flag.Float64("abort", 0, "probability a session execution aborts and yields no signature")
		retries      = flag.Int("retries", 0, "extra executions per session; completed executions vote on the verdict")
		vote         = flag.Int("vote", 1, "prune a cell only if its group passed in at least this many partitions")
		noiseSeed    = flag.Uint64("noise-seed", 7, "seed for the unreliable-tester noise streams")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file after the run")
		timeout      = flag.Duration("timeout", 0, "wall-clock budget for the sweep (0 = none); on expiry the partial study is reported")
		cacheMB      = flag.Int64("cachemb", 0, "artifact-cache budget in MiB (0 = unbounded)")
		cacheDir     = flag.String("cachedir", "", "persist build artifacts under this directory and reuse them across runs (warm start)")
		connect      = flag.String("connect", "", "comma-separated sharddiag worker addresses (host:port, or unix:/path); shard the sweep across them instead of running in-process")
		shards       = flag.Int("shards", 0, "shards to split the fault list into when -connect is set (0 = 4 per worker)")
	)
	flag.Parse()

	if *groups < 1 {
		usageError(fmt.Errorf("-groups must be at least 1, got %d", *groups))
	}
	if *partitions < 1 {
		usageError(fmt.Errorf("-partitions must be at least 1, got %d", *partitions))
	}
	if *patterns < 1 {
		usageError(fmt.Errorf("-patterns must be at least 1, got %d", *patterns))
	}
	if *faults < 1 {
		usageError(fmt.Errorf("-faults must be at least 1, got %d", *faults))
	}
	if *chains < 1 {
		usageError(fmt.Errorf("-chains must be at least 1, got %d", *chains))
	}
	if *retries < 0 {
		usageError(fmt.Errorf("-retries must not be negative, got %d", *retries))
	}
	if *vote < 1 || *vote > *partitions {
		usageError(fmt.Errorf("-vote must be in [1, %d], got %d", *partitions, *vote))
	}
	if *workers < 0 {
		usageError(fmt.Errorf("-workers must be non-negative, got %d", *workers))
	}
	if *timeout < 0 {
		usageError(fmt.Errorf("-timeout must be non-negative, got %v", *timeout))
	}
	if err := validateCacheMB(*cacheMB); err != nil {
		usageError(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	c, err := loadCircuit(*benchPath, *name)
	if err != nil {
		fatal(err)
	}
	if *drcCheck {
		reportDRC(c.Name, drc.Check(c))
	}
	scheme, err := schemeByName(*schemeName)
	if err != nil {
		fatal(err)
	}
	// A -timeout deadline and Ctrl-C both cancel the sweep at batch
	// granularity: in-flight batches drain and the contiguous prefix of
	// diagnosed faults is reported as a partial study.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	opts := core.Options{
		Scheme:        scheme,
		Groups:        *groups,
		Partitions:    *partitions,
		Patterns:      *patterns,
		Chains:        *chains,
		Ideal:         *ideal,
		Workers:       *workers,
		Lanes:         *lanes,
		Noise:         noise.Model{Intermittent: *intermittent, Flip: *flip, Abort: *abort, Seed: *noiseSeed},
		Retry:         bist.RetryPolicy{MaxRetries: *retries},
		VoteThreshold: *vote,
		StrictDRC:     *drcCheck,
	}
	if *cacheMB > 0 {
		opts.Cache = pipeline.NewCacheWithBudget(pipeline.Budget{MaxBytes: *cacheMB << 20})
	}
	opts.CacheDir = *cacheDir
	if *lanes < 0 || *lanes > sim.MaxBatchLanes {
		usageError(fmt.Errorf("-lanes %d out of range 0..%d", *lanes, sim.MaxBatchLanes))
	}
	if err := opts.Noise.Validate(); err != nil {
		usageError(err)
	}
	switch *order {
	case "natural":
	case "random":
		opts.ScanOrder = scan.RandomOrder(c.NumDFFs(), 1)
	case "reverse":
		opts.ScanOrder = scan.ReverseOrder(c.NumDFFs())
	default:
		usageError(fmt.Errorf("unknown scan order %q", *order))
	}

	b, err := core.NewCircuitBench(c, opts)
	if err != nil {
		fatal(err)
	}
	stats := c.Stats()
	fmt.Printf("circuit:  %s\n", stats)
	fmt.Printf("plan:     %s, %d groups x %d partitions, %d patterns/session, %d chains\n",
		scheme.Name(), *groups, *partitions, *patterns, *chains)
	if opts.Noise.Enabled() {
		fmt.Printf("tester:   intermittent p=%.2f, flip q=%.3f, abort %.3f, %d retries/session, vote threshold %d\n",
			*intermittent, *flip, *abort, *retries, *vote)
	}

	sample := sim.SampleFaults(b.Faults(), *faults, *seed)
	var observe func(*core.FaultDiagnosis)
	if *verbose {
		observe = func(fd *core.FaultDiagnosis) {
			if !fd.Detected {
				fmt.Printf("  %-24s undetected\n", fd.Fault.Describe(c))
				return
			}
			fmt.Printf("  %-24s failing=%v candidates=%v pruned=%v\n",
				fd.Fault.Describe(c), fd.Actual.Elems(),
				fd.Result.Candidates.Elems(), fd.Result.Pruned.Elems())
		}
	}
	var study *core.Study
	var runErr error
	if *connect != "" {
		// Sharded run: identical per-fault verdicts and study aggregates,
		// merged slot-major from the workers' deltas, so stdout below is
		// byte-identical to the in-process sweep (the batch-plan "sched:"
		// line, which legitimately differs, is verbose-only).
		conns, err := shard.DialAll(ctx, strings.Split(*connect, ","))
		if err != nil {
			fatal(err)
		}
		defer func() {
			for _, wc := range conns {
				wc.Close()
			}
		}()
		co := &shard.Coordinator{Conns: conns, Shards: *shards}
		if *verbose {
			co.Progress = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "scandiag: "+format+"\n", args...)
			}
		}
		ref := shard.ProfileRef(*name, 0, 1, c)
		if *benchPath != "" {
			ref = shard.BenchFileRef(*benchPath, c)
		}
		study, runErr = co.RunCircuit(ctx, ref, opts, sample, shard.StuckAtCosts(c, sample), observe)
	} else {
		study, runErr = b.RunObservedContext(ctx, sample, observe)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "scandiag: sweep interrupted (%v): diagnosed %d of %d scheduled faults; reporting the partial study\n",
			runErr, study.Completeness.Observed, study.Completeness.Scheduled)
	}
	cost := b.Cost()
	fmt.Printf("cost:     %d sessions, %d shift clocks total, %d golden-signature bits, %d selection-register bits\n",
		cost.Sessions, cost.TotalClocks, cost.SignatureBits, cost.SelectionRegisterBits)
	if *verbose {
		// Verbose-only so default stdout stays byte-identical between cold
		// and warm runs (the CI warm-start check diffs it).
		fmt.Printf("sched:    %d fault batches, %.1f%% lane fill\n", study.PlanBatches, 100*study.PlanFill)
	}
	fmt.Printf("\nfaults:    %d sampled, %d diagnosed, %d undetected by scan cells\n",
		len(sample), study.Diagnosed, study.Undetected)
	if !study.Completeness.Complete() {
		fmt.Printf("partial:   %d of %d faults observed (%.0f%%) before the deadline\n",
			study.Completeness.Observed, study.Completeness.Scheduled, 100*study.Completeness.Fraction())
	}
	fmt.Printf("DR:        %.4f without pruning\n", study.Full.Value())
	fmt.Printf("DR:        %.4f with pruning\n", study.Pruned.Value())
	if opts.Noise.Enabled() {
		fmt.Printf("\nrobust:    %d misses (faults whose pruned set lost a truly failing cell)\n", study.Misses)
		fmt.Printf("baseline:  %d misses, DR %.4f (hard intersection over the same noisy verdicts)\n",
			study.BaselineMisses, study.BaselineFull.Value())
		fmt.Printf("tester:    %s\n", &study.Reliability)
	}
	fmt.Println("\nDR by number of partitions (without pruning):")
	for k, dr := range study.ByPartition {
		fmt.Printf("  %2d: %.4f\n", k+1, dr.Value())
	}
	// Cache traffic goes to stderr so warm and cold runs keep identical
	// stdout — that invariance is what the CI warm-start check diffs.
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "scandiag: %s\n", b.Opts.Cache.Stats())
	}
}

// maxCacheMB rejects budgets no machine this tool targets could hold
// (1 TiB): such values are typos, not configurations.
const maxCacheMB = 1 << 20

func validateCacheMB(mb int64) error {
	if mb < 0 {
		return fmt.Errorf("-cachemb must be non-negative, got %d", mb)
	}
	if mb > maxCacheMB {
		return fmt.Errorf("-cachemb must be at most %d (1 TiB), got %d", int64(maxCacheMB), mb)
	}
	return nil
}

func loadCircuit(path, name string) (*circuit.Circuit, error) {
	if path != "" {
		return bench.ParseFile(path)
	}
	p, ok := benchgen.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown built-in circuit %q (try one of %v)", name, profileNames())
	}
	return benchgen.Generate(p)
}

func profileNames() []string {
	var names []string
	for _, p := range benchgen.Profiles() {
		names = append(names, p.Name)
	}
	return names
}

func schemeByName(name string) (partition.Scheme, error) {
	switch name {
	case "two-step":
		return partition.TwoStep{}, nil
	case "random", "random-selection":
		return partition.RandomSelection{}, nil
	case "interval":
		return partition.Interval{}, nil
	case "fixed", "fixed-interval":
		return partition.FixedInterval{}, nil
	}
	return nil, fmt.Errorf("unknown scheme %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scandiag:", err)
	os.Exit(1)
}

// reportDRC prints the design-rule verdict. On violations it lists every
// hit and exits with status 2: simulating a rule-breaking netlist would
// produce corrupt signatures, not diagnoses.
func reportDRC(name string, vs []drc.Violation) {
	if len(vs) == 0 {
		fmt.Printf("drc:      %s clean\n", name)
		return
	}
	fmt.Fprintf(os.Stderr, "scandiag: drc: %s: %d violation(s)\n", name, len(vs))
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "  %s\n", v)
	}
	os.Exit(2)
}

// writeMemProfile snapshots the heap after a GC so the profile reflects
// retained memory, not transient garbage. A no-op for an empty path.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scandiag:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "scandiag:", err)
	}
}

// usageError reports a bad flag combination: the error, then the flag
// summary, then a non-zero exit (2, matching flag's own parse failures).
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "scandiag:", err)
	flag.Usage()
	os.Exit(2)
}
