// Command chaindiag locates a stuck-at defect in a scan chain's shift
// path: it injects the fault into a simulated device and runs the
// load–capture–observe diagnosis, reporting the candidate positions.
//
// Usage:
//
//	chaindiag -circuit s953 -position 12 -stuck 1
//	chaindiag -circuit s5378 -sweep        # inject every position, report accuracy
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/benchgen"
	"repro/internal/chaindiag"
	"repro/internal/circuit"
	"repro/internal/drc"
	"repro/internal/pipeline"
	"repro/internal/pipeline/diskstore"
	"repro/internal/scan"
	"repro/internal/shard"
	"repro/internal/sim"
)

// maxCacheMB rejects budgets no machine this tool targets could hold
// (1 TiB): such values are typos, not configurations.
const maxCacheMB = 1 << 20

func validateCacheMB(mb int64) error {
	if mb < 0 {
		return fmt.Errorf("-cachemb must be non-negative, got %d", mb)
	}
	if mb > maxCacheMB {
		return fmt.Errorf("-cachemb must be at most %d (1 TiB), got %d", int64(maxCacheMB), mb)
	}
	return nil
}

func main() {
	var (
		name     = flag.String("circuit", "s953", "built-in benchmark profile")
		position = flag.Int("position", 0, "chain position of the injected shift-path fault")
		stuck    = flag.Int("stuck", 0, "stuck value of the injected fault (0 or 1)")
		healthy  = flag.Bool("healthy", false, "diagnose a fault-free chain instead")
		sweep    = flag.Bool("sweep", false, "inject a fault at every position and summarise accuracy")
		workers  = flag.Int("workers", 0, "goroutines for -sweep (0 = all CPUs, 1 = serial; results are identical)")
		lanes    = flag.Int("lanes", 0, "fault lanes per batch, 0-256; accepted for CLI consistency — chain diagnosis runs one shift-path fault at a time and never batches")
		drcCheck = flag.Bool("drc", false, "run the static design-rule checker on the netlist before diagnosing")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file after the run")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for -sweep (0 = none); on expiry the partial accuracy summary is reported")
		cacheMB    = flag.Int64("cachemb", 0, "artifact-cache budget in MiB (0 = unbounded); accepted for CLI consistency — chain diagnosis builds no cacheable artifacts")
		cacheDir   = flag.String("cachedir", "", "artifact store directory; chaindiag only opens and reports it (no artifacts are built)")
		connect    = flag.String("connect", "", "comma-separated sharddiag worker addresses (host:port, or unix:/path); shard -sweep across them instead of running in-process")
		shards     = flag.Int("shards", 0, "shards to split the injection sweep into when -connect is set (0 = 4 per worker)")
	)
	flag.Parse()

	if *stuck != 0 && *stuck != 1 {
		usageError(fmt.Errorf("-stuck must be 0 or 1, got %d", *stuck))
	}
	if *position < 0 {
		usageError(fmt.Errorf("-position must not be negative, got %d", *position))
	}
	if *workers < 0 {
		usageError(fmt.Errorf("-workers must be non-negative, got %d", *workers))
	}
	if *lanes < 0 || *lanes > sim.MaxBatchLanes {
		usageError(fmt.Errorf("-lanes %d out of range 0..%d", *lanes, sim.MaxBatchLanes))
	}
	if *timeout < 0 {
		usageError(fmt.Errorf("-timeout must be non-negative, got %v", *timeout))
	}
	if err := validateCacheMB(*cacheMB); err != nil {
		usageError(err)
	}
	if *cacheDir != "" {
		// Chain diagnosis is pure shift-path simulation with no cacheable
		// build artifacts; honor the shared flag by opening (and creating)
		// the store so scripted pipelines can pass one -cachedir everywhere.
		ds, err := diskstore.Open(*cacheDir, diskstore.Options{})
		if err != nil {
			fatal(err)
		}
		entries, err := ds.List()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chaindiag: artifact store %s holds %d entries (unused by chain diagnosis)\n", ds.Dir(), len(entries))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	p, ok := benchgen.ProfileByName(*name)
	if !ok {
		fatal(fmt.Errorf("unknown circuit %q", *name))
	}
	c, err := benchgen.Generate(p)
	if err != nil {
		fatal(err)
	}
	if *drcCheck {
		reportDRC(c.Name, drc.Check(c))
	}
	if !*healthy && !*sweep && *position >= c.NumDFFs() {
		usageError(fmt.Errorf("-position %d outside the %d-cell chain of %s", *position, c.NumDFFs(), *name))
	}
	order := scan.NaturalOrder(c.NumDFFs())
	fmt.Printf("circuit: %s (chain of %d cells)\n", c.Stats(), c.NumDFFs())

	if *sweep {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
		defer stop()
		if *connect != "" {
			runShardedSweep(ctx, c, *name, order, *connect, *shards)
		} else {
			runSweep(ctx, c, order, *workers)
		}
		return
	}
	if *connect != "" {
		usageError(fmt.Errorf("-connect applies only to -sweep (single injections run locally)"))
	}

	var fault *chaindiag.ChainFault
	if !*healthy {
		fault = &chaindiag.ChainFault{Position: *position, Stuck: uint8(*stuck)}
		fmt.Printf("injected: %v\n", *fault)
	} else {
		fmt.Println("injected: none (healthy chain)")
	}
	dut, err := chaindiag.NewDevice(c, order, fault)
	if err != nil {
		fatal(err)
	}
	cands, err := chaindiag.Diagnose(c, order, dut.LoadCaptureObserve)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("candidates (%d):\n", len(cands))
	for _, cand := range cands {
		fmt.Printf("  %v\n", cand)
	}
}

func runSweep(ctx context.Context, c *circuit.Circuit, order []int, workers int) {
	n := c.NumDFFs()
	// One injection per (position, stuck) pair; each job is independent,
	// so the sweep fans out over an Executor and aggregates afterwards. On
	// a -timeout deadline or Ctrl-C the pool drains its in-flight claims
	// and the summary covers the contiguous prefix of injections finished.
	type outcome struct {
		located, exact bool
		cands          int
		err            error
		done           bool
	}
	results := make([]outcome, 2*n)
	runErr := pipeline.Executor{Workers: workers}.RunContext(ctx, len(results), func() func(int) error {
		return func(i int) error {
			truth := chaindiag.ChainFault{Position: i / 2, Stuck: uint8(i % 2)}
			dut, err := chaindiag.NewDevice(c, order, &truth)
			if err != nil {
				return err
			}
			cands, err := chaindiag.Diagnose(c, order, dut.LoadCaptureObserve)
			if err != nil {
				return err
			}
			results[i].cands = len(cands)
			for _, cand := range cands {
				if cand.Fault != nil && *cand.Fault == truth {
					results[i].located = true
					results[i].exact = len(cands) == 1
					break
				}
			}
			results[i].done = true
			return nil
		}
	})
	if runErr != nil && !errors.Is(runErr, context.Canceled) && !errors.Is(runErr, context.DeadlineExceeded) {
		fatal(runErr)
	}
	runs := 0
	for runs < len(results) && results[runs].done {
		runs++
	}
	if runs == 0 {
		fatal(fmt.Errorf("sweep interrupted (%v) before any injection finished", runErr))
	}
	exact, located, totalCands := 0, 0, 0
	for _, r := range results[:runs] {
		totalCands += r.cands
		if r.located {
			located++
		}
		if r.exact {
			exact++
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "chaindiag: sweep interrupted (%v): %d of %d injections finished; summarising the prefix\n",
			runErr, runs, len(results))
	}
	fmt.Printf("injected %d shift-path faults:\n", runs)
	fmt.Printf("  located:         %d (%.1f%%)\n", located, 100*float64(located)/float64(runs))
	fmt.Printf("  exactly (1 cand): %d (%.1f%%)\n", exact, 100*float64(exact)/float64(runs))
	fmt.Printf("  avg candidates:  %.2f\n", float64(totalCands)/float64(runs))
}

// runShardedSweep fans the injection sweep out to sharddiag workers.
// Verdicts are per-injection and independent, so the summary matches
// runSweep's exactly on a complete run; on a partial failure the
// non-failed injections are summarised (a sound subset).
func runShardedSweep(ctx context.Context, c *circuit.Circuit, name string, order []int, connect string, shards int) {
	conns, err := shard.DialAll(ctx, strings.Split(connect, ","))
	if err != nil {
		fatal(err)
	}
	defer func() {
		for _, wc := range conns {
			wc.Close()
		}
	}()
	co := &shard.Coordinator{Conns: conns, Shards: shards}
	outs, runErr := co.RunChain(ctx, shard.ProfileRef(name, 0, 1, c), order, 2*c.NumDFFs())
	runs, located, exact, totalCands := 0, 0, 0, 0
	for _, out := range outs {
		if out == nil {
			continue
		}
		runs++
		totalCands += out.Cands
		if out.Located {
			located++
		}
		if out.Exact {
			exact++
		}
	}
	if runs == 0 {
		fatal(fmt.Errorf("sweep interrupted (%v) before any injection finished", runErr))
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "chaindiag: sweep interrupted (%v): %d of %d injections finished; summarising those\n",
			runErr, runs, len(outs))
	}
	fmt.Printf("injected %d shift-path faults:\n", runs)
	fmt.Printf("  located:         %d (%.1f%%)\n", located, 100*float64(located)/float64(runs))
	fmt.Printf("  exactly (1 cand): %d (%.1f%%)\n", exact, 100*float64(exact)/float64(runs))
	fmt.Printf("  avg candidates:  %.2f\n", float64(totalCands)/float64(runs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaindiag:", err)
	os.Exit(1)
}

// reportDRC prints the design-rule verdict. On violations it lists every
// hit and exits with status 2: a rule-breaking netlist cannot support a
// trustworthy shift-path diagnosis.
func reportDRC(name string, vs []drc.Violation) {
	if len(vs) == 0 {
		fmt.Printf("drc:     %s clean\n", name)
		return
	}
	fmt.Fprintf(os.Stderr, "chaindiag: drc: %s: %d violation(s)\n", name, len(vs))
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "  %s\n", v)
	}
	os.Exit(2)
}

// writeMemProfile snapshots the heap after a GC so the profile reflects
// retained memory, not transient garbage. A no-op for an empty path.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaindiag:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "chaindiag:", err)
	}
}

// usageError reports a bad flag combination: the error, then the flag
// summary, then a non-zero exit (2, matching flag's own parse failures).
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "chaindiag:", err)
	flag.Usage()
	os.Exit(2)
}
