// Command artifacts inspects and maintains an on-disk artifact store (the
// -cachedir persistence tier of scandiag, socdiag and experiments).
//
// Usage:
//
//	artifacts -dir DIR ls              list entries (key, kind, size, age)
//	artifacts -dir DIR stat KEY        describe one entry's envelope
//	artifacts -dir DIR verify          re-check every entry's CRC and envelope
//	artifacts -dir DIR gc -max MB      evict least-recently-used entries past MB
//
// ls and stat decode only headers; verify reads every byte. Exit status is
// 1 for operational failures and 2 for usage errors; verify additionally
// exits 1 when any entry fails its check.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/codec"
	"repro/internal/pipeline/diskstore"
)

func main() {
	dir := flag.String("dir", "", "artifact store directory (required)")
	flag.Usage = usage
	flag.Parse()
	if *dir == "" || flag.NArg() < 1 {
		usageError(fmt.Errorf("need -dir and a subcommand"))
	}
	ds, err := diskstore.Open(*dir, diskstore.Options{})
	if err != nil {
		fatal(err)
	}
	switch cmd, args := flag.Arg(0), flag.Args()[1:]; cmd {
	case "ls":
		runLS(ds, args)
	case "stat":
		runStat(ds, args)
	case "verify":
		runVerify(ds, args)
	case "gc":
		runGC(ds, args)
	default:
		usageError(fmt.Errorf("unknown subcommand %q", cmd))
	}
}

func runLS(ds *diskstore.Store, args []string) {
	if len(args) != 0 {
		usageError(fmt.Errorf("ls takes no arguments"))
	}
	entries, err := ds.List()
	if err != nil {
		fatal(err)
	}
	var total int64
	for _, e := range entries {
		fmt.Printf("%-70s %10d  %s\n", e.Key, e.Size, age(e.ModTime))
		total += e.Size
	}
	fmt.Printf("%d entries, %d payload bytes\n", len(entries), total)
}

func runStat(ds *diskstore.Store, args []string) {
	if len(args) != 1 {
		usageError(fmt.Errorf("stat takes exactly one KEY"))
	}
	key := args[0]
	data, err := ds.Get(key)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("key:      %s\n", key)
	fmt.Printf("payload:  %d bytes\n", len(data))
	h, err := codec.Inspect(data)
	if err != nil {
		// Not every blob need be a codec envelope; report what it is.
		fmt.Printf("envelope: not a codec artifact (%v)\n", err)
		return
	}
	fmt.Printf("kind:     %s\n", h.Kind)
	fmt.Printf("version:  %d\n", h.Version)
	fmt.Printf("body:     %d bytes, sha256 verified\n", h.PayloadLen)
}

func runVerify(ds *diskstore.Store, args []string) {
	if len(args) != 0 {
		usageError(fmt.Errorf("verify takes no arguments"))
	}
	results, err := ds.Verify()
	if err != nil {
		fatal(err)
	}
	bad := 0
	for _, r := range results {
		if r.Err != nil {
			bad++
			fmt.Printf("BAD  %s: %v\n", r.Entry.Path, r.Err)
			continue
		}
		// The store's CRC guards the bytes; also check the codec envelope
		// so a verify pass vouches for decodability, not just storage.
		data, err := ds.Get(r.Entry.Key)
		if err == nil {
			_, err = codec.Inspect(data)
		}
		if err != nil {
			bad++
			fmt.Printf("BAD  %s: %v\n", r.Entry.Key, err)
			continue
		}
		fmt.Printf("ok   %s\n", r.Entry.Key)
	}
	fmt.Printf("%d entries, %d bad\n", len(results), bad)
	if bad > 0 {
		os.Exit(1)
	}
}

func runGC(ds *diskstore.Store, args []string) {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	maxMB := fs.Int64("max", 0, "target size in MiB; least-recently-used entries beyond it are removed")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usageError(fmt.Errorf("gc takes only -max"))
	}
	if *maxMB < 0 {
		usageError(fmt.Errorf("-max must be non-negative, got %d", *maxMB))
	}
	removed, freed, err := ds.GC(*maxMB << 20)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("removed %d entries, freed %d bytes\n", removed, freed)
}

func age(t time.Time) string {
	return fmt.Sprintf("%s ago", time.Since(t).Round(time.Second))
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: artifacts -dir DIR <command>

commands:
  ls             list entries (key, payload size, age)
  stat KEY       describe one entry's codec envelope
  verify         re-check every entry (storage CRC + codec sha256)
  gc -max MB     evict least-recently-used entries past MB
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artifacts:", err)
	os.Exit(1)
}

func usageError(err error) {
	fmt.Fprintln(os.Stderr, "artifacts:", err)
	usage()
	os.Exit(2)
}
