package scanbist_test

import (
	"bytes"
	"strings"
	"testing"

	scanbist "repro"
)

// TestQuickstartFlow exercises the façade end to end exactly as the README
// quickstart does.
func TestQuickstartFlow(t *testing.T) {
	c := scanbist.MustGenerate("s953")
	b, err := scanbist.NewCircuitBench(c, scanbist.Options{
		Scheme:     scanbist.TwoStep(),
		Groups:     4,
		Partitions: 4,
		Patterns:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	faults := scanbist.SampleFaults(b.Faults(), 50, 1)
	study := b.Run(faults)
	if study.Diagnosed == 0 {
		t.Fatal("nothing diagnosed")
	}
	if study.Full.Value() < 0 {
		t.Errorf("DR = %v", study.Full.Value())
	}
}

func TestSchemeConstructors(t *testing.T) {
	names := map[string]scanbist.Scheme{
		"two-step":         scanbist.TwoStep(),
		"random-selection": scanbist.RandomSelection(),
		"interval":         scanbist.IntervalBased(),
		"fixed-interval":   scanbist.FixedInterval(),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("scheme %q != %q", s.Name(), want)
		}
	}
}

func TestBenchRoundTripViaFacade(t *testing.T) {
	c := scanbist.MustGenerate("s298")
	var buf bytes.Buffer
	if err := scanbist.WriteBench(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := scanbist.ParseBench("s298", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumDFFs() != c.NumDFFs() || c2.NumGates() != c.NumGates() {
		t.Error("round trip changed circuit size")
	}
}

func TestFaultHelpers(t *testing.T) {
	c := scanbist.MustGenerate("s298")
	full := scanbist.FullFaultList(c)
	collapsed := scanbist.CollapseFaults(c, full)
	if len(collapsed) >= len(full) {
		t.Error("collapsing did not reduce the list")
	}
	sample := scanbist.SampleFaults(collapsed, 10, 3)
	if len(sample) != 10 {
		t.Errorf("sampled %d", len(sample))
	}
}

func TestSOCFacade(t *testing.T) {
	a := scanbist.MustGenerate("s298")
	b := scanbist.MustGenerate("s526")
	s, err := scanbist.NewSOC("duo",
		&scanbist.SOCCore{Name: "a", Circuit: a},
		&scanbist.SOCCore{Name: "b", Circuit: b})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := scanbist.NewSOCBench(s, scanbist.Options{
		Scheme:     scanbist.TwoStep(),
		Groups:     4,
		Partitions: 3,
		Patterns:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	faults := scanbist.SampleFaults(sb.CoreFaults(1), 20, 2)
	study := sb.RunCore(1, faults)
	if study.Diagnosed == 0 {
		t.Error("nothing diagnosed on the SOC")
	}
}

func TestProfilesExposed(t *testing.T) {
	if len(scanbist.Profiles()) < 10 {
		t.Error("profile table too small")
	}
	if _, ok := scanbist.ProfileByName("s38584"); !ok {
		t.Error("s38584 missing")
	}
	if len(scanbist.RandomScanOrder(10, 1)) != 10 {
		t.Error("RandomScanOrder wrong length")
	}
}
