package scanbist_test

// The shard-scaling benchmark: real worker processes (the test binary
// re-executed in worker mode), a coordinator in the benchmark process,
// and a shared artifact store — the deployment cmd/sharddiag ships,
// measured end to end. Sub-benchmarks sweep the worker count so
// BENCH_PR*.json records how wall-clock moves from 1 to 2 to 4 worker
// processes on the host's core count; the "local" variant runs the same
// sweep in-process to price the protocol overhead. On a single-core
// host the multi-worker variants measure dispatch overhead, not
// speedup; scaling shows up from ~4 cores (see EXPERIMENTS.md).

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/soc"
)

const shardWorkerEnv = "REPRO_SHARD_WORKER"

// TestMain lets the test binary double as a shard worker: with
// REPRO_SHARD_WORKER=1 it serves shards on a loopback port (announced on
// stdout) until stdin closes, instead of running the test suite. The
// benchmarks spawn these workers with os.Executable(), so the sharded
// path is measured across real process boundaries without shipping a
// separate binary.
func TestMain(m *testing.M) {
	if os.Getenv(shardWorkerEnv) != "" {
		runShardWorker()
		return
	}
	os.Exit(m.Run())
}

func runShardWorker() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", ln.Addr())
	os.Stdout.Close() // the address is the only stdout the parent reads
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// The parent holds our stdin open; EOF means it exited or is done.
		io.Copy(io.Discard, os.Stdin)
		cancel()
	}()
	srv := shard.NewServer(shard.ServerConfig{
		Node:     fmt.Sprintf("bench-%d", os.Getpid()),
		Workers:  1, // one sweep goroutine per process: scaling comes from process count
		CacheDir: os.Getenv("REPRO_SHARD_CACHEDIR"),
	})
	if err := srv.Serve(ctx, ln); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// workerProc is one spawned worker process and its dial address.
type workerProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	addr  string
}

func startWorkerProcs(tb testing.TB, n int, cacheDir string) []*workerProc {
	tb.Helper()
	exe, err := os.Executable()
	if err != nil {
		tb.Fatal(err)
	}
	procs := make([]*workerProc, 0, n)
	tb.Cleanup(func() {
		for _, p := range procs {
			p.stdin.Close()
			p.cmd.Wait()
		}
	})
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			shardWorkerEnv+"=1",
			"REPRO_SHARD_CACHEDIR="+cacheDir,
		)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			tb.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			tb.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			tb.Fatal(err)
		}
		p := &workerProc{cmd: cmd, stdin: stdin}
		procs = append(procs, p)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if _, err := fmt.Sscanf(sc.Text(), "ADDR %s", &p.addr); err == nil {
				break
			}
		}
		if p.addr == "" {
			tb.Fatalf("worker %d never announced its address", i)
		}
	}
	return procs
}

// shardBenchFixture is the workload every variant runs: a stuck-at
// sweep over one benchgen circuit, big enough that per-shard compute
// dominates the frame overhead.
func shardBenchFixture(tb testing.TB) (codec.DeviceRef, []sim.Fault, []int) {
	tb.Helper()
	c := benchgen.MustGenerate("s13207")
	bench, err := core.NewCircuitBench(c, shardBenchOpts())
	if err != nil {
		tb.Fatal(err)
	}
	sample := sim.SampleFaults(bench.Faults(), 96, 1)
	return shard.ProfileRef("s13207", 0, 1, c), sample, shard.StuckAtCosts(c, sample)
}

func shardBenchOpts() core.Options {
	return core.Options{Scheme: partition.TwoStep{}, Groups: 8, Partitions: 8, Patterns: 64}
}

// BenchmarkShardScaling sweeps the worker-process count over the same
// sharded sweep. workers=1 is the scaling baseline (one worker process,
// full protocol); the DR-style custom metric "faults/op" pins the
// workload so baselines stay comparable across PRs.
func BenchmarkShardScaling(b *testing.B) {
	ref, faults, costs := shardBenchFixture(b)
	o := shardBenchOpts()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cacheDir := b.TempDir()
			procs := startWorkerProcs(b, workers, cacheDir)
			addrs := make([]string, len(procs))
			for i, p := range procs {
				addrs[i] = p.addr
			}
			conns, err := shard.DialAll(context.Background(), addrs)
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				for _, wc := range conns {
					wc.Close()
				}
			}()
			// A fixed shard count keeps the work partition identical across
			// variants — only the parallelism varies, so ns/op differences
			// are scheduling, not a different shard plan.
			co := &shard.Coordinator{Conns: conns, Shards: 8}
			// Warm-up: every worker fetches-or-builds the device into the
			// shared store, so timed iterations measure steady-state sweeps.
			if _, err := co.RunCircuit(context.Background(), ref, o, faults, costs, nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				study, err := co.RunCircuit(context.Background(), ref, o, faults, costs, nil)
				if err != nil {
					b.Fatal(err)
				}
				if study.Completeness.Observed != len(faults) {
					b.Fatalf("observed %d of %d", study.Completeness.Observed, len(faults))
				}
			}
			b.ReportMetric(float64(len(faults)), "faults/op")
		})
	}
	b.Run("local", func(b *testing.B) {
		c := benchgen.MustGenerate("s13207")
		bench, err := core.NewCircuitBench(c, o)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bench.RunObservedContext(context.Background(), faults, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			study, err := bench.RunObservedContext(context.Background(), faults, nil)
			if err != nil {
				b.Fatal(err)
			}
			if study.Completeness.Observed != len(faults) {
				b.Fatalf("observed %d of %d", study.Completeness.Observed, len(faults))
			}
		}
		b.ReportMetric(float64(len(faults)), "faults/op")
	})
}

// BenchmarkShardSOC1M is the headline scale-out run: a fault sweep on
// one core of the million-gate soc1m SOC, sharded across 4 worker
// processes versus 1. The first worker assembles the SOC (~7s) and
// publishes it through the shared store; the rest fetch. Gated behind
// REPRO_BENCH_SOC1M=1 — assembly plus a million-gate sweep is too heavy
// for the CI bench smoke. Recorded numbers live in EXPERIMENTS.md.
func BenchmarkShardSOC1M(b *testing.B) {
	if os.Getenv("REPRO_BENCH_SOC1M") == "" {
		b.Skip("set REPRO_BENCH_SOC1M=1 to run the million-gate scaling benchmark")
	}
	s, err := soc.Preset("soc1m")
	if err != nil {
		b.Fatal(err)
	}
	ref := shard.SOCRef("soc1m", s)
	// Diagnose the smallest core so one iteration stays in seconds; the
	// scale-out cost being measured is shard dispatch + per-core sweeps.
	coreIdx := 0
	for i, c := range s.Cores {
		if c.Circuit.Stats().Gates < s.Cores[coreIdx].Circuit.Stats().Gates {
			coreIdx = i
		}
	}
	cc := s.Cores[coreIdx].Circuit
	faults := sim.SampleFaults(sim.CollapseFaults(cc, sim.FullFaultList(cc)), 64, 1)
	costs := shard.StuckAtCosts(cc, faults)
	o := core.Options{Scheme: partition.TwoStep{}, Groups: 32, Partitions: 8, Patterns: 64}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cacheDir := b.TempDir()
			procs := startWorkerProcs(b, workers, cacheDir)
			addrs := make([]string, len(procs))
			for i, p := range procs {
				addrs[i] = p.addr
			}
			conns, err := shard.DialAll(context.Background(), addrs)
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				for _, wc := range conns {
					wc.Close()
				}
			}()
			co := &shard.Coordinator{Conns: conns, Shards: 4}
			if _, err := co.RunSOCCore(context.Background(), ref, coreIdx, o, faults, costs, nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				study, err := co.RunSOCCore(context.Background(), ref, coreIdx, o, faults, costs, nil)
				if err != nil {
					b.Fatal(err)
				}
				if study.Completeness.Observed != len(faults) {
					b.Fatalf("observed %d of %d", study.Completeness.Observed, len(faults))
				}
			}
			b.ReportMetric(float64(len(faults)), "faults/op")
		})
	}
}
