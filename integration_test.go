package scanbist_test

// Cross-cutting integration assertions over the public façade: invariants
// that tie several subsystems together and would catch accidental breakage
// of the interfaces between them.

import (
	"bytes"
	"strings"
	"testing"

	scanbist "repro"
)

// TestFormatsAgreeOnStructure: the same generated circuit written to both
// interchange formats and re-read must agree on every structural count.
func TestFormatsAgreeOnStructure(t *testing.T) {
	for _, name := range []string{"s298", "s953", "s1423"} {
		c := scanbist.MustGenerate(name)

		var bbuf bytes.Buffer
		if err := scanbist.WriteBench(&bbuf, c); err != nil {
			t.Fatal(err)
		}
		fromBench, err := scanbist.ParseBench(name, &bbuf)
		if err != nil {
			t.Fatal(err)
		}

		var vbuf bytes.Buffer
		if err := scanbist.WriteVerilog(&vbuf, c); err != nil {
			t.Fatal(err)
		}
		fromVerilog, err := scanbist.ParseVerilog(strings.NewReader(vbuf.String()))
		if err != nil {
			t.Fatal(err)
		}

		for _, view := range []*scanbist.Circuit{fromBench, fromVerilog} {
			if view.NumInputs() != c.NumInputs() || view.NumOutputs() != c.NumOutputs() ||
				view.NumDFFs() != c.NumDFFs() || view.NumGates() != c.NumGates() ||
				view.Depth() != c.Depth() {
				t.Errorf("%s: re-read view differs structurally", name)
			}
		}
	}
}

// TestSchemesShareFaultGroundTruth: the fault list, sample, and per-fault
// ground truth are identical regardless of the diagnosis scheme — only the
// candidate sets differ — so cross-scheme DR comparisons are apples to
// apples.
func TestSchemesShareFaultGroundTruth(t *testing.T) {
	c := scanbist.MustGenerate("s953")
	mk := func(s scanbist.Scheme) *scanbist.CircuitBench {
		b, err := scanbist.NewCircuitBench(c, scanbist.Options{
			Scheme: s, Groups: 4, Partitions: 4, Patterns: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := mk(scanbist.RandomSelection())
	b := mk(scanbist.TwoStep())
	faults := scanbist.SampleFaults(a.Faults(), 40, 17)
	for _, f := range faults {
		fa, fb := a.DiagnoseFault(f), b.DiagnoseFault(f)
		if fa.Detected != fb.Detected {
			t.Fatalf("fault %s: detection differs across schemes", f.Describe(c))
		}
		if fa.Detected && !fa.Actual.Equal(fb.Actual) {
			t.Fatalf("fault %s: ground-truth failing cells differ across schemes", f.Describe(c))
		}
	}
}

// TestSuspectRegionViaFacade: for clustered faults diagnosed under ideal
// compaction, the structural suspect region always contains the fault
// site, end to end through the public API.
func TestSuspectRegionViaFacade(t *testing.T) {
	c := scanbist.MustGenerate("s953")
	bench, err := scanbist.NewCircuitBench(c, scanbist.Options{
		Scheme: scanbist.TwoStep(), Groups: 4, Partitions: 8, Patterns: 128, Ideal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	faults := scanbist.SampleFaults(bench.Faults(), 120, 19)
	checked := 0
	for _, f := range faults {
		fd := bench.DiagnoseFault(f)
		if !fd.Detected || fd.Actual.Len() < 2 {
			continue
		}
		checked++
		region := c.SuspectRegion(fd.Actual.Elems())
		// The fault's net must be inside the structural region.
		in := false
		for _, id := range region {
			if id == f.Net {
				in = true
				break
			}
		}
		if !in {
			t.Fatalf("fault %s outside its suspect region", f.Describe(c))
		}
	}
	if checked == 0 {
		t.Fatal("no multi-cell faults checked")
	}
}

// TestCostScalesWithPlan: doubling partitions doubles sessions, clocks, and
// signature storage, and never touches the selection registers.
func TestCostScalesWithPlan(t *testing.T) {
	c := scanbist.MustGenerate("s953")
	mk := func(partitions int) *scanbist.CircuitBench {
		b, err := scanbist.NewCircuitBench(c, scanbist.Options{
			Scheme: scanbist.TwoStep(), Groups: 4, Partitions: partitions, Patterns: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	c4, c8 := mk(4).Cost(), mk(8).Cost()
	if c8.Sessions != 2*c4.Sessions || c8.TotalClocks != 2*c4.TotalClocks ||
		c8.SignatureBits != 2*c4.SignatureBits {
		t.Errorf("cost did not scale: %+v vs %+v", c4, c8)
	}
	if c8.SelectionRegisterBits != c4.SelectionRegisterBits {
		t.Error("selection registers depend on partition count")
	}
}
