package scanbist_test

import (
	"fmt"
	"strings"

	scanbist "repro"
)

// The canonical flow: generate a benchmark circuit, set up the BIST
// environment with the paper's two-step scheme, and measure diagnostic
// resolution over a fault sample.
func Example() {
	c := scanbist.MustGenerate("s953")
	bench, err := scanbist.NewCircuitBench(c, scanbist.Options{
		Scheme:     scanbist.TwoStep(),
		Groups:     4,
		Partitions: 8,
		Patterns:   200,
	})
	if err != nil {
		panic(err)
	}
	faults := scanbist.SampleFaults(bench.Faults(), 100, 1)
	study := bench.Run(faults)
	fmt.Printf("diagnosed %d faults\n", study.Diagnosed)
	fmt.Printf("two-step beats plain intersection: %v\n",
		study.Pruned.Value() <= study.Full.Value())
	// Output:
	// diagnosed 63 faults
	// two-step beats plain intersection: true
}

// Diagnosing a single fault yields the candidate failing cells directly.
func ExampleCircuitBench_DiagnoseFault() {
	c := scanbist.MustGenerate("s953")
	bench, err := scanbist.NewCircuitBench(c, scanbist.Options{
		Scheme:     scanbist.TwoStep(),
		Groups:     4,
		Partitions: 8,
		Patterns:   200,
	})
	if err != nil {
		panic(err)
	}
	f := scanbist.SampleFaults(bench.Faults(), 5, 42)[0]
	fd := bench.DiagnoseFault(f)
	fmt.Println("detected:", fd.Detected)
	fmt.Println("candidates cover the failing cells:", coverAll(fd))
	// Output:
	// detected: true
	// candidates cover the failing cells: true
}

func coverAll(fd *scanbist.FaultDiagnosis) bool {
	for _, cell := range fd.Actual.Elems() {
		if !fd.Result.Candidates.Contains(cell) {
			return false
		}
	}
	return true
}

// Circuits round-trip through the ISCAS-89 .bench interchange format.
func ExampleParseBench() {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
q = DFF(d)
d = NAND(a, q)
z = OR(b, q)
`
	c, err := scanbist.ParseBench("tiny", strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Stats())
	// Output:
	// tiny: 2 PI, 1 PO, 1 DFF, 2 gates, depth 1
}

// The SOC flow: cores on a TestRail, faults confined to one core.
func ExampleNewSOCBench() {
	s, err := scanbist.NewSOC("duo",
		&scanbist.SOCCore{Name: "left", Circuit: scanbist.MustGenerate("s298")},
		&scanbist.SOCCore{Name: "right", Circuit: scanbist.MustGenerate("s526")},
	)
	if err != nil {
		panic(err)
	}
	bench, err := scanbist.NewSOCBench(s, scanbist.Options{
		Scheme:     scanbist.TwoStep(),
		Groups:     4,
		Partitions: 4,
		Patterns:   64,
	})
	if err != nil {
		panic(err)
	}
	faulty, _ := s.CoreByName("right")
	lo, hi := s.CellRange(faulty)
	fmt.Printf("faulty core owns meta-chain cells [%d, %d)\n", lo, hi)
	study := bench.RunCore(faulty, scanbist.SampleFaults(bench.CoreFaults(faulty), 40, 1))
	fmt.Println("diagnosed some faults:", study.Diagnosed > 0)
	// Output:
	// faulty core owns meta-chain cells [14, 35)
	// diagnosed some faults: true
}

// Structural scan stitching recovers locality when the netlist order
// carries none.
func ExampleStructuralScanOrder() {
	c := scanbist.MustGenerate("s953")
	order := scanbist.StructuralScanOrder(c)
	fmt.Println("cells ordered:", len(order) == c.NumDFFs())
	// Output:
	// cells ordered: true
}

// The suspect region is the dictionary-free localisation step: the defect
// must lie in every failing cell's fan-in cone.
func ExampleCircuit_SuspectRegion() {
	c := scanbist.MustGenerate("s953")
	bench, err := scanbist.NewCircuitBench(c, scanbist.Options{
		Scheme: scanbist.TwoStep(), Groups: 4, Partitions: 8, Patterns: 128,
	})
	if err != nil {
		panic(err)
	}
	for _, f := range scanbist.SampleFaults(bench.Faults(), 50, 41) {
		fd := bench.DiagnoseFault(f)
		if !fd.Detected || fd.Actual.Len() < 2 {
			continue
		}
		region := c.SuspectRegion(fd.Actual.Elems())
		fmt.Println("region is a strict subset:", len(region) > 0 && len(region) < c.NumNets())
		break
	}
	// Output:
	// region is a strict subset: true
}
