// Mixedmode demonstrates the BIST pattern-delivery spectrum the diagnosis
// architecture sits on: pseudorandom patterns from the PRPG cover most
// faults; PODEM generates deterministic cubes for the random-resistant
// remainder; and LFSR reseeding (Könemann) embeds each cube into a PRPG
// seed, so the tester stores a handful of seeds instead of full patterns.
//
//	go run ./examples/mixedmode
package main

import (
	"fmt"
	"log"

	scanbist "repro"
	"repro/internal/atpg"
	"repro/internal/bist"
	"repro/internal/lfsr"
	"repro/internal/reseed"
	"repro/internal/sim"
)

func main() {
	c := scanbist.MustGenerate("s953")
	fmt.Printf("circuit: %s\n\n", c.Stats())

	const patterns = 128
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), patterns)
	fs := sim.NewFaultSim(c, blocks)
	faults := scanbist.SampleFaults(scanbist.CollapseFaults(c, scanbist.FullFaultList(c)), 400, 5)

	// Phase 1: pseudorandom coverage.
	cov := sim.MeasureCoverage(fs, faults)
	fmt.Printf("phase 1 — pseudorandom BIST: %s\n", cov)

	// Phase 2: PODEM cubes for what random patterns missed.
	gen := atpg.New(c)
	var cubes []atpg.Test
	var resistant []sim.Fault
	untestable := 0
	for i, f := range faults {
		if cov.FirstDetection[i] >= 0 {
			continue
		}
		test, outcome := gen.Generate(f)
		switch outcome {
		case atpg.Detected:
			cubes = append(cubes, test)
			resistant = append(resistant, f)
		case atpg.Untestable:
			untestable++
		}
	}
	fmt.Printf("phase 2 — PODEM top-off:     %d random-resistant faults get cubes, %d proven untestable\n",
		len(cubes), untestable)
	compacted := atpg.Compact(cubes)
	fmt.Printf("          static compaction:  %d cubes -> %d patterns\n", len(cubes), len(compacted))

	// Phase 3: reseed the PRPG instead of storing full patterns. Note the
	// tension with compaction: merging cubes multiplies their care bits,
	// and a cube only fits a seed while its care bits stay (roughly) below
	// the seed width — so a deployment either stores few wide compacted
	// patterns or many narrow seeds, whichever is smaller for the design.
	seedPoly := lfsr.MustPrimitivePoly(32)
	solver, err := reseed.NewSolver(seedPoly, c.NumDFFs()+c.NumInputs())
	if err != nil {
		log.Fatal(err)
	}
	countSolvable := func(cubes []atpg.Test) int {
		n := 0
		for _, cube := range cubes {
			pos, vals := cube.Care()
			if _, ok := solver.SeedFor(pos, vals); ok {
				n++
			}
		}
		return n
	}
	patternBits := c.NumDFFs() + c.NumInputs()
	rawSolved := countSolvable(cubes)
	compSolved := countSolvable(compacted)
	fmt.Printf("phase 3 — LFSR reseeding (%d-bit seeds):\n", seedPoly.Degree())
	fmt.Printf("          uncompacted cubes: %d of %d encodable -> %d seed bits\n",
		rawSolved, len(cubes), rawSolved*seedPoly.Degree())
	fmt.Printf("          compacted cubes:   %d of %d encodable (merging raises care bits)\n",
		compSolved, len(compacted))
	fmt.Printf("          stored patterns:   %d x %d = %d bits without reseeding\n",
		len(compacted), patternBits, len(compacted)*patternBits)
	fmt.Println("\nfor chains this short, compacted full patterns are competitive; on a")
	fmt.Println("thousand-cell design each pattern costs ~1000 bits and the 32-bit")
	fmt.Println("seeds win by 30x — which is why production BIST reseeds.")
}
