// Multifault demonstrates the paper's Figure 2: when several faults are
// present, their fault cones either stay disjoint — producing separate
// failing segments of the scan chain — or overlap into one expanded
// segment. The two-step diagnosis handles both: each failing segment is
// covered by a few consecutive intervals of the first partition, and the
// random-selection partitions then sharpen the candidates.
//
//	go run ./examples/multifault
package main

import (
	"fmt"
	"log"

	scanbist "repro"
)

func main() {
	c := scanbist.MustGenerate("s5378")
	fmt.Printf("circuit: %s\n\n", c.Stats())

	bench, err := scanbist.NewCircuitBench(c, scanbist.Options{
		Scheme:     scanbist.TwoStep(),
		Groups:     8,
		Partitions: 8,
		Patterns:   128,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Collect single faults with compact, well-separated failing segments.
	type seg struct {
		fault    scanbist.Fault
		min, max int
	}
	var segs []seg
	for _, f := range scanbist.SampleFaults(bench.Faults(), 400, 9) {
		fd := bench.DiagnoseFault(f)
		if !fd.Detected || fd.Actual.Len() < 2 {
			continue
		}
		if span := fd.Actual.Max() - fd.Actual.Min(); span > c.NumDFFs()/10 {
			continue
		}
		segs = append(segs, seg{f, fd.Actual.Min(), fd.Actual.Max()})
		if len(segs) == 24 {
			break
		}
	}
	if len(segs) < 4 {
		log.Fatal("not enough compact-segment faults found")
	}

	// Non-overlapping cones: pick two faults whose segments are far apart.
	var far *seg
	for i := 1; i < len(segs); i++ {
		if segs[i].min > segs[0].max+20 || segs[i].max+20 < segs[0].min {
			far = &segs[i]
			break
		}
	}
	if far != nil {
		show(bench, c, "non-overlapping cones (Figure 2a)", segs[0].fault, far.fault)
	}

	// Overlapping cones: pick two faults whose segments intersect.
	var near *seg
	for i := 1; i < len(segs); i++ {
		if segs[i].min <= segs[0].max && segs[0].min <= segs[i].max {
			near = &segs[i]
			break
		}
	}
	if near != nil {
		show(bench, c, "overlapping cones (Figure 2b)", segs[0].fault, near.fault)
	}
}

func show(bench *scanbist.CircuitBench, c *scanbist.Circuit, title string, f1, f2 scanbist.Fault) {
	fd := bench.DiagnoseMulti([]scanbist.Fault{f1, f2})
	fmt.Printf("%s\n", title)
	fmt.Printf("  faults:          %s and %s\n", f1.Describe(c), f2.Describe(c))
	fmt.Printf("  failing cells:   %d cells in %d..%d\n",
		fd.Actual.Len(), fd.Actual.Min(), fd.Actual.Max())
	fmt.Printf("  candidates:      %d cells (intersection), %d after pruning\n",
		fd.Result.Candidates.Len(), fd.Result.Pruned.Len())
	missed := fd.Actual.Clone()
	missed.SubtractWith(fd.Result.Pruned)
	fmt.Printf("  failing cells missed by diagnosis: %d\n\n", missed.Len())
}
