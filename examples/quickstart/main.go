// Quickstart: diagnose failing scan cells in a full-scan circuit with the
// paper's two-step partitioning scheme.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	scanbist "repro"
)

func main() {
	// Generate an s953-scale benchmark circuit (16 PI, 23 PO, 29 scan
	// cells, 395 gates). Any ISCAS-89 .bench netlist works the same way via
	// scanbist.ParseBench.
	c := scanbist.MustGenerate("s953")
	fmt.Printf("circuit: %s\n\n", c.Stats())

	// Build the BIST environment: a single scan chain, 4 groups per
	// partition, 8 partitions (one interval-based, then random-selection),
	// 200 pseudorandom patterns per session.
	bench, err := scanbist.NewCircuitBench(c, scanbist.Options{
		Scheme:     scanbist.TwoStep(),
		Groups:     4,
		Partitions: 8,
		Patterns:   200,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Inject one stuck-at fault and diagnose it.
	faults := scanbist.SampleFaults(bench.Faults(), 25, 42)
	for _, f := range faults {
		fd := bench.DiagnoseFault(f)
		if !fd.Detected || fd.Actual.Len() < 2 || fd.Actual.Len() > 5 {
			continue
		}
		fmt.Printf("injected fault:      %s\n", f.Describe(c))
		fmt.Printf("true failing cells:  %v\n", fd.Actual.Elems())
		fmt.Printf("candidates:          %v\n", fd.Result.Candidates.Elems())
		fmt.Printf("after pruning:       %v\n", fd.Result.Pruned.Elems())
		fmt.Printf("confirmed failing:   %v\n\n", fd.Result.Confirmed.Elems())
		break
	}

	// Aggregate diagnostic resolution over a fault sample. DR = 0 means the
	// candidate sets contain nothing but the truly failing cells.
	study := bench.Run(scanbist.SampleFaults(bench.Faults(), 200, 1))
	fmt.Printf("diagnosed %d faults (%d undetected by scan cells)\n",
		study.Diagnosed, study.Undetected)
	fmt.Printf("diagnostic resolution: %.3f without pruning, %.3f with pruning\n",
		study.Full.Value(), study.Pruned.Value())
}
