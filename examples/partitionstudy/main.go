// Partitionstudy compares the three partitioning schemes on one circuit:
// the Figure-3 style single-fault worked example, followed by the Table-1
// style sweep of diagnostic resolution against the number of partitions.
//
//	go run ./examples/partitionstudy
package main

import (
	"fmt"
	"log"

	scanbist "repro"
)

const (
	groups     = 4
	partitions = 8
	patterns   = 200
	faultCount = 300
)

func main() {
	c := scanbist.MustGenerate("s953")
	fmt.Printf("circuit: %s\n\n", c.Stats())

	workedExample(c)
	sweep(c)
}

// workedExample mirrors the paper's Figure 3: one fault, one partition of
// four groups, interval-based vs random-selection candidates.
func workedExample(c *scanbist.Circuit) {
	mk := func(s scanbist.Scheme) *scanbist.CircuitBench {
		b, err := scanbist.NewCircuitBench(c, scanbist.Options{
			Scheme: s, Groups: groups, Partitions: 1, Patterns: patterns,
		})
		if err != nil {
			log.Fatal(err)
		}
		return b
	}
	ib := mk(scanbist.IntervalBased())
	rb := mk(scanbist.RandomSelection())

	for _, f := range scanbist.SampleFaults(ib.Faults(), 200, 7) {
		fd := ib.DiagnoseFault(f)
		if !fd.Detected || fd.Actual.Len() != 2 {
			continue
		}
		rfd := rb.DiagnoseFault(f)
		if fd.Result.Candidates.Len() >= rfd.Result.Candidates.Len() {
			// Find a fault whose two failing cells land in one interval,
			// the Figure-3 situation.
			continue
		}
		fmt.Printf("worked example (one partition, %d groups)\n", groups)
		fmt.Printf("  fault:               %s\n", f.Describe(c))
		fmt.Printf("  true failing cells:  %v\n", fd.Actual.Elems())
		fmt.Println("  interval-based groups:")
		for g, cells := range ib.Engine().ChainPartitions(0)[0].Groups() {
			fmt.Printf("    group %d: cells %d-%d\n", g+1, cells[0], cells[len(cells)-1])
		}
		fmt.Printf("  interval candidates: %v (%d suspects)\n",
			fd.Result.Candidates.Elems(), fd.Result.Candidates.Len())
		fmt.Printf("  random candidates:   %v (%d suspects)\n\n",
			rfd.Result.Candidates.Elems(), rfd.Result.Candidates.Len())
		return
	}
	fmt.Println("no two-cell example fault found in the sample")
}

// sweep mirrors Table 1: DR against the number of partitions for all three
// schemes.
func sweep(c *scanbist.Circuit) {
	schemes := []scanbist.Scheme{
		scanbist.IntervalBased(),
		scanbist.RandomSelection(),
		scanbist.TwoStep(),
	}
	var studies []*scanbist.Study
	for _, s := range schemes {
		b, err := scanbist.NewCircuitBench(c, scanbist.Options{
			Scheme: s, Groups: groups, Partitions: partitions, Patterns: patterns,
		})
		if err != nil {
			log.Fatal(err)
		}
		studies = append(studies, b.Run(scanbist.SampleFaults(b.Faults(), faultCount, 1)))
	}
	fmt.Printf("diagnostic resolution vs partitions (%d faults, %d patterns)\n",
		faultCount, patterns)
	fmt.Printf("%-11s %12s %12s %12s\n", "partitions", "interval", "random-sel", "two-step")
	for k := 0; k < partitions; k++ {
		fmt.Printf("%-11d %12.3f %12.3f %12.3f\n", k+1,
			studies[0].ByPartition[k].Value(),
			studies[1].ByPartition[k].Value(),
			studies[2].ByPartition[k].Value())
	}
	fmt.Println("\nreading: interval resolves fastest with few partitions, random")
	fmt.Println("selection wins once many partitions are applied, and two-step")
	fmt.Println("combines both — exactly the paper's Table 1 behaviour.")
}
