// Faultcones analyses the structural motivation behind the paper (its
// Figure 2 and Section 3): an error caused by a fault can only be captured
// by scan cells inside the fault's output cone, and with a structural scan
// order those cells form a small contiguous cluster of the chain. The
// analysis measures cone sizes and spans across the fault population and
// cross-checks the structural cones against fault simulation.
//
//	go run ./examples/faultcones
package main

import (
	"fmt"
	"log"
	"sort"

	scanbist "repro"
)

func main() {
	c := scanbist.MustGenerate("s5378")
	fmt.Printf("circuit: %s\n\n", c.Stats())

	// Structural analysis: the output cone of every net, expressed as scan
	// cells (the cells whose D inputs the net reaches combinationally).
	var sizes, spans []int
	for id := range c.Nets {
		cells := c.ConeCells(scanbist.NetID(id))
		if len(cells) == 0 {
			continue
		}
		sizes = append(sizes, len(cells))
		spans = append(spans, cells[len(cells)-1]-cells[0]+1)
	}
	fmt.Println("structural fault cones (all nets):")
	fmt.Printf("  cells reached:  %s\n", dist(sizes))
	fmt.Printf("  chain span:     %s  (chain length %d)\n\n", dist(spans), c.NumDFFs())

	// Dynamic confirmation: simulate faults and compare the observed
	// failing cells with the structural cone.
	bench, err := scanbist.NewCircuitBench(c, scanbist.Options{
		Scheme: scanbist.TwoStep(), Groups: 8, Partitions: 4, Patterns: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	faults := scanbist.SampleFaults(bench.Faults(), 300, 1)
	var fsizes, fspans []int
	clustered := 0
	detected := 0
	for _, f := range faults {
		fd := bench.DiagnoseFault(f)
		if !fd.Detected {
			continue
		}
		detected++
		cells := fd.Actual.Elems()
		fsizes = append(fsizes, len(cells))
		span := cells[len(cells)-1] - cells[0] + 1
		fspans = append(fspans, span)
		if span <= c.NumDFFs()/8 {
			clustered++
		}
	}
	fmt.Printf("simulated failing cells (%d detected of %d sampled faults):\n", detected, len(faults))
	fmt.Printf("  failing cells:  %s\n", dist(fsizes))
	fmt.Printf("  chain span:     %s\n", dist(fspans))
	fmt.Printf("  %d/%d faults (%.0f%%) confine their failures to 1/8 of the chain\n\n",
		clustered, detected, 100*float64(clustered)/float64(detected))

	fmt.Println("this clustering is what interval-based partitioning exploits: a")
	fmt.Println("failing segment intersects few consecutive intervals, while random")
	fmt.Println("selection scatters it across almost every group.")
}

// dist renders min/median/p90/max of a sample.
func dist(xs []int) string {
	if len(xs) == 0 {
		return "n/a"
	}
	sort.Ints(xs)
	return fmt.Sprintf("min %d, median %d, p90 %d, max %d",
		xs[0], xs[len(xs)/2], xs[len(xs)*9/10], xs[len(xs)-1])
}
