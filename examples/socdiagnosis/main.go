// Socdiagnosis demonstrates the paper's Section 5 scenario: a core-based
// SOC tested through a TestRail whose meta scan chain threads the internal
// chains of all cores. A spot defect makes exactly one core faulty, so its
// failing scan cells are clustered in one segment of the meta chain —
// the situation where two-step partitioning beats random selection by an
// order of magnitude.
//
//	go run ./examples/socdiagnosis
package main

import (
	"fmt"
	"log"

	scanbist "repro"
)

func main() {
	// Build the paper's SOC1: the six largest ISCAS-89 cores daisy-chained
	// on a single meta scan chain.
	s, err := scanbist.SOC1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOC %q: %d cores, %d scan cells on one meta chain\n", s.Name, s.NumCores(), s.NumCells())
	for i, c := range s.Cores {
		lo, hi := s.CellRange(i)
		fmt.Printf("  core %-8s cells [%5d, %5d)\n", c.Name, lo, hi)
	}

	faultyCore, _ := s.CoreByName("s13207")
	fmt.Printf("\ninjecting faults into core %s only\n\n", s.Cores[faultyCore].Name)

	for _, scheme := range []scanbist.Scheme{scanbist.RandomSelection(), scanbist.TwoStep()} {
		b, err := scanbist.NewSOCBench(s, scanbist.Options{
			Scheme:     scheme,
			Groups:     32,
			Partitions: 8,
			Patterns:   128,
		})
		if err != nil {
			log.Fatal(err)
		}
		faults := scanbist.SampleFaults(b.CoreFaults(faultyCore), 200, 1)
		study := b.RunCore(faultyCore, faults)
		fmt.Printf("%-18s DR=%.3f (pruned %.3f), DR<=0.5 after %s partitions\n",
			scheme.Name()+":", study.Full.Value(), study.Pruned.Value(),
			partitionsLabel(study.PartitionsToReachDR(0.5)))
	}

	// Show one diagnosis in detail with the two-step scheme: the candidates
	// land inside the faulty core's segment.
	b, err := scanbist.NewSOCBench(s, scanbist.Options{
		Scheme: scanbist.TwoStep(), Groups: 32, Partitions: 8, Patterns: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := s.CellRange(faultyCore)
	for _, f := range scanbist.SampleFaults(b.CoreFaults(faultyCore), 50, 3) {
		fd := b.DiagnoseFault(faultyCore, f)
		if !fd.Detected || fd.Actual.Len() < 3 {
			continue
		}
		fmt.Printf("\nexample fault %s in %s\n", f.Describe(s.Cores[faultyCore].Circuit), s.Cores[faultyCore].Name)
		fmt.Printf("  failing cells:  %d, spanning meta-chain positions %d..%d\n",
			fd.Actual.Len(), fd.Actual.Min(), fd.Actual.Max())
		fmt.Printf("  candidates:     %d cells, spanning %d..%d\n",
			fd.Result.Pruned.Len(), fd.Result.Pruned.Min(), fd.Result.Pruned.Max())
		inside := fd.Result.Pruned.Min() >= lo && fd.Result.Pruned.Max() < hi
		fmt.Printf("  inside the faulty core's segment [%d, %d): %v\n", lo, hi, inside)
		break
	}
}

func partitionsLabel(k int) string {
	if k < 0 {
		return ">8"
	}
	return fmt.Sprintf("%d", k)
}
