// Failureanalysis runs the complete loop the paper's introduction
// motivates: scan-BIST signatures → partition-based failing-cell
// identification → fault-dictionary lookup → a ranked list of defect sites
// for physical failure analysis.
//
//	go run ./examples/failureanalysis
package main

import (
	"fmt"
	"log"

	scanbist "repro"
	"repro/internal/bist"
	"repro/internal/lfsr"
	"repro/internal/sim"
)

func main() {
	c := scanbist.MustGenerate("s5378")
	fmt.Printf("circuit: %s\n\n", c.Stats())

	// The BIST environment under the two-step scheme.
	bench, err := scanbist.NewCircuitBench(c, scanbist.Options{
		Scheme:     scanbist.TwoStep(),
		Groups:     8,
		Partitions: 8,
		Patterns:   128,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A fault dictionary over the collapsed fault list (built once per
	// design; reused for every failing device).
	prpg := lfsr.MustNew(lfsr.MustPrimitivePoly(16), 0xACE1)
	blocks := bist.GenerateBlocks(prpg, c.NumInputs(), c.NumDFFs(), 128)
	fs := sim.NewFaultSim(c, blocks)
	allFaults := scanbist.CollapseFaults(c, scanbist.FullFaultList(c))
	dict := scanbist.BuildDictionary(fs, allFaults)
	fmt.Printf("dictionary: %s\n\n", dict.Stats())

	// A "returned part": the first sampled defect that actually fails
	// multiple scan cells; we pretend not to know which fault it is.
	var (
		trueFault scanbist.Fault
		fd        *scanbist.FaultDiagnosis
	)
	for _, f := range scanbist.SampleFaults(allFaults, 400, 13) {
		if cand := bench.DiagnoseFault(f); cand.Detected && cand.Actual.Len() >= 3 && cand.Actual.Len() <= 12 {
			trueFault, fd = f, cand
			break
		}
	}
	if fd == nil {
		log.Fatal("no suitable specimen fault in the sample")
	}

	fmt.Printf("failing device (ground truth hidden from the flow): %s\n", trueFault.Describe(c))
	fmt.Printf("  step 1 — BIST sessions:  %d groups x %d partitions\n", 8, 8)
	fmt.Printf("  step 2 — failing cells:  candidates %v\n", fd.Result.Pruned.Elems())
	fmt.Printf("            (truth: %v)\n\n", fd.Actual.Elems())

	// Structural localisation needs no dictionary: the defect must lie in
	// every failing cell's fan-in cone.
	region := c.SuspectRegion(fd.Result.Pruned.Elems())
	fmt.Printf("  step 3 — structural suspect region: %d of %d nets (fan-in cone intersection)\n",
		len(region), c.NumNets())

	matches := dict.Lookup(fd.Result.Pruned, 5)
	fmt.Println("  step 4 — ranked defect candidates for physical inspection:")
	for i, m := range matches {
		marker := " "
		if m.Fault == trueFault {
			marker = "*"
		}
		fmt.Printf("   %s %d. %-24s score %.2f (missed %d, extra %d)\n",
			marker, i+1, m.Fault.Describe(c), m.Score, m.Missed, m.Extra)
	}
	if r := dict.Rank(fd.Result.Pruned, trueFault); r > 0 {
		fmt.Printf("\n  the true defect ranks #%d of %d dictionary faults\n", r, dict.Len())
	}
}
